//! The `scibench` command-line interface.
//!
//! `scibench lint` statically verifies every shipped lowering with
//! [`plancheck`]: all engines, both use cases, the paper's full data-size
//! sweeps, at 16 and 64 nodes. Non-memory errors always fail the lint.
//! Memory errors are legitimate only where the paper reports them —
//! Myria's pipelined astronomy run at 24 visits on 16 nodes (Figure 15) —
//! and the lint *asserts* that configuration still trips the checker (and
//! that its materialized fallback is clean), so the OOM reproduction is
//! itself regression-tested.
//!
//! `scibench bench` times the five hottest kernels at a ladder of thread
//! counts and emits the machine-readable `BENCH_kernels.json`;
//! `scibench bench e2e` runs every engine analog's full pipeline under the
//! eager copy-everywhere baseline and the shared data plane, asserts the
//! outputs are bit-identical, and emits `BENCH_e2e.json` with per-engine
//! copy counts; `scibench bench skew` schedules a source-skewed astro
//! field under morsel claiming and under static splits and emits
//! `BENCH_skew.json` with per-worker imbalance and steal counts;
//! `scibench bench compress` measures per-codec compression ratios at the
//! engine ingest boundary, runs the run-level kernel fast paths against
//! their dense twins, replays two full pipelines under `CompressMode`
//! Off and Auto (fingerprint equality enforced), and emits
//! `BENCH_compress.json`; `scibench bench serve` replays a seeded
//! hot/cold query schedule against the resident service ([`sciserve`]) —
//! serial, concurrent, cache-off, and under a halved cache budget that
//! forces LRU eviction, all fingerprint-identical — and emits
//! `BENCH_serve.json`; `scibench bench ooc` streams a stack deliberately
//! larger than the memory budget through the governor's spill tier at
//! three budgets (25 %, 50 %, unbounded), runs every engine analog
//! out-of-core, gates bit-identical fingerprints and budget-respecting
//! peak residency, and emits `BENCH_ooc.json`; `scibench perf-smoke`
//! asserts the serial and multi-threaded paths produce bit-identical
//! outputs (the CI determinism gate). `bench`, `bench serve` and
//! `perf-smoke` honor `--threads N`; `bench` and `perf-smoke` also read
//! the `SCIBENCH_THREADS` environment variable; `bench serve` honors
//! `--budget-bytes N` for the result-cache budget; and the
//! `SCIBENCH_MEM_BUDGET` environment variable (a byte count with an
//! optional `k`/`m`/`g` suffix) activates the process-wide memory
//! governor for any subcommand.

use parexec::{parse_threads, Parallelism};
use plancheck::{check, Code, Report};
use scibench_bench::{compress, e2e, hostinfo, kernels, memo, ooc, plans, serve, skew};
use scibench_core::experiments::Setup;
use scibench_core::lower::Engine;

/// Process-wide memory budget for the governor's spill tier, in bytes
/// (optional `k`/`m`/`g` suffix, powers of 1024). Parsed here — the bench
/// binary is the sanctioned home for ambient reads — and applied via
/// [`marray::set_mem_budget`] before any subcommand runs, so every bench
/// and lint can be replayed out-of-core without code changes.
const MEM_BUDGET_ENV: &str = "SCIBENCH_MEM_BUDGET";

/// Parse a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024). Zero is rejected: the governor treats 0 as "unbounded", so a
/// literal `0` budget would silently mean the opposite of what it says.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (digits, mult) = match t.as_bytes().last() {
        Some(b'k' | b'K') => (&t[..t.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&t[..t.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    let n = digits
        .trim()
        .parse::<u64>()
        .map_err(|e| e.to_string())?
        .checked_mul(mult)
        .ok_or_else(|| "byte count overflows u64".to_string())?;
    if n == 0 {
        return Err("byte count must be positive".to_string());
    }
    Ok(n)
}

/// Apply `SCIBENCH_MEM_BUDGET` when set; an invalid value warns and is
/// ignored (matching how `SCIBENCH_THREADS` is handled).
fn apply_mem_budget_env() {
    if let Ok(v) = std::env::var(MEM_BUDGET_ENV) {
        match parse_bytes(&v) {
            Ok(n) => {
                eprintln!("note: {MEM_BUDGET_ENV}={v}: memory governor active ({n} bytes)");
                marray::set_mem_budget(Some(n));
            }
            Err(e) => eprintln!("warning: ignoring invalid {MEM_BUDGET_ENV}={v}: {e}"),
        }
    }
}

fn is_memory(code: Code) -> bool {
    matches!(code, Code::M001 | Code::M002 | Code::M003 | Code::M004)
}

/// Accumulates lint rows and the failures that decide the exit code.
struct Lint {
    setup: Setup,
    verbose: bool,
    checked: usize,
    failures: Vec<String>,
    /// Measured static-split worker imbalance from a committed
    /// `BENCH_skew.json`, when one is present in the working directory:
    /// raises every engine's P004 skew threshold to what static splits
    /// actually produced on the measured workload (§5.3.3).
    measured_imbalance: Option<f64>,
}

impl Lint {
    fn new(verbose: bool) -> Self {
        let measured_imbalance = std::fs::read_to_string("BENCH_skew.json")
            .ok()
            .as_deref()
            .and_then(plancheck::measured_imbalance_from_bench)
            .filter(|&m| m > 1.0);
        if let Some(m) = measured_imbalance {
            println!("lint: P004 skew threshold informed by BENCH_skew.json (measured static imbalance {m:.2}x)");
        }
        Lint {
            setup: Setup::default(),
            verbose,
            checked: 0,
            failures: Vec::new(),
            measured_imbalance,
        }
    }

    /// Check one lowered graph. `memory_expected` encodes whether this
    /// configuration is *supposed* to overrun memory; a mismatch in either
    /// direction is a failure.
    fn row(
        &mut self,
        name: &str,
        engine: Engine,
        graph: &simcluster::TaskGraph,
        cluster: &simcluster::ClusterSpec,
        memory_expected: bool,
    ) -> Report {
        let mut profile = self.setup.profiles.invariants(engine);
        if let Some(m) = self.measured_imbalance {
            profile = profile.with_measured_imbalance(m);
        }
        let report = check(graph, cluster, &profile);
        self.checked += 1;
        let hard: Vec<&plancheck::Diagnostic> =
            report.errors().filter(|d| !is_memory(d.code)).collect();
        let mem_errors = report.errors().filter(|d| is_memory(d.code)).count();
        let mut bad = Vec::new();
        if !hard.is_empty() {
            bad.push(format!("{} non-memory error(s)", hard.len()));
        }
        if mem_errors > 0 && !memory_expected {
            bad.push(format!("{mem_errors} unexpected memory error(s)"));
        }
        if mem_errors == 0 && memory_expected {
            bad.push("expected a memory-budget error but none fired".into());
        }
        let status = if bad.is_empty() { "ok  " } else { "FAIL" };
        let note = if memory_expected {
            " (expected OOM: Figure 15)"
        } else {
            ""
        };
        println!("{status} {name:<58} {}{note}", report.summary());
        if self.verbose || !bad.is_empty() {
            for line in report.render_table().lines() {
                println!("       {line}");
            }
        }
        for b in bad {
            self.failures.push(format!("{name}: {b}"));
        }
        report
    }
}

fn lint(verbose: bool) -> i32 {
    let mut l = Lint::new(verbose);

    // The shipped-configuration catalog: one enumeration shared with the
    // `--memo` cacheability sweep, so the two gates check the same plans.
    for c in plans::shipped_configs(&Setup::default()) {
        l.row(&c.name, c.engine, &c.graph, &c.cluster, c.memory_expected);
    }

    // The source gate rides along: `scibench lint` also runs sciflow, the
    // interprocedural effect analysis, so a panic/nondet/copy/spawn sink
    // reachable from an engine entry point fails this command the same way
    // a bad lowering does.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/bench sits two levels below the workspace root");
    match scilint::analyze_workspace(root) {
        Ok(report) => {
            print!("{}", report.flow_summary());
            if !report.is_flow_clean() {
                if verbose {
                    print!("{}", report.flow_listing());
                }
                for f in &report.flow_findings {
                    l.failures.push(format!(
                        "sciflow {}: {}:{} {} reachable from `{}`",
                        f.rule,
                        f.path,
                        f.line,
                        f.sink,
                        f.chain.first().map_or("?", |h| h.name.as_str()),
                    ));
                }
            }
        }
        Err(e) => l
            .failures
            .push(format!("sciflow: workspace unreadable: {e}")),
    }

    println!();
    if l.failures.is_empty() {
        println!(
            "plan lint: {} lowered graphs checked, all within expectations",
            l.checked
        );
        0
    } else {
        println!(
            "plan lint: {} graphs checked, {} FAILED:",
            l.checked,
            l.failures.len()
        );
        for f in &l.failures {
            println!("  {f}");
        }
        1
    }
}

/// `scibench lint --memo`: the memoization-soundness sweep. Certifies
/// every shipped lowering with [`scimemo`] (purity verdicts joined with
/// canonical plan fingerprints) and emits the `scimemo/v2` report —
/// including the live `memo_stats` counter block — to stdout or `--out`.
/// Human-readable progress goes to stderr so the JSON stream stays clean,
/// mirroring the bench subcommands.
fn lint_memo(out_path: Option<std::path::PathBuf>) -> i32 {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/bench sits two levels below the workspace root");
    eprintln!("memo lint: certifying every shipped lowering for result-cache soundness...");
    let sweep = match memo::run_memo(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: workspace unreadable: {e}");
            return 1;
        }
    };
    for (family, (tasks, certified)) in sweep.report.family_certified() {
        eprintln!("  {family:<8} {certified:>5}/{tasks:<5} tasks certified");
    }
    for fx in &sweep.report.fixtures {
        let rejected: Vec<_> = fx.cert.rejections().collect();
        match rejected.first() {
            Some(n) => {
                eprintln!("  fixture  {} rejected: {}", fx.name, n.reason);
                for hop in &n.witness {
                    eprintln!("             {hop}");
                }
            }
            None => eprintln!("  fixture  {} NOT rejected", fx.name),
        }
    }
    let json = sweep.report.to_json();
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &json) {
                eprintln!("error: cannot write {}: {e}", p.display());
                return 1;
            }
            eprintln!("wrote {}", p.display());
        }
        None => print!("{json}"),
    }
    if sweep.failures.is_empty() {
        eprintln!(
            "memo lint: {} configs certified, unsafe fixture rejected",
            sweep.report.configs.len()
        );
        0
    } else {
        eprintln!("memo lint: {} failure(s):", sweep.failures.len());
        for f in &sweep.failures {
            eprintln!("  {f}");
        }
        1
    }
}

/// Default thread ladder for `scibench bench`: serial anchor plus the
/// counts the Figure 13 analysis cares about.
const BENCH_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Parse a `--threads` operand; exits with the usage error already printed.
fn threads_arg(value: Option<&String>, usage: &str) -> Result<Parallelism, i32> {
    let Some(v) = value else {
        eprintln!("error: --threads requires a value");
        eprintln!("{usage}");
        return Err(2);
    };
    match parse_threads(v) {
        Ok(p) => Ok(p),
        Err(e) => {
            eprintln!("error: invalid --threads value: {e}");
            eprintln!("{usage}");
            Err(2)
        }
    }
}

/// Flags shared by the artifact-emitting subcommands.
#[derive(Default)]
struct BenchFlags {
    quick: bool,
    out_path: Option<std::path::PathBuf>,
    threads: Option<Parallelism>,
    budget_bytes: Option<u64>,
}

/// Parse the `[--quick] [--threads N] [--budget-bytes N] [--out PATH]`
/// tail every bench subcommand shares. Which optional flags a subcommand
/// accepts is declared at the call site, so e.g. `--quick` on the kernel
/// ladder is still an error. On a bad argument the usage error has
/// already been printed and the exit code is returned.
fn bench_flags(
    args: &[String],
    usage: &str,
    quick_ok: bool,
    threads_ok: bool,
    budget_ok: bool,
) -> Result<BenchFlags, i32> {
    let mut f = BenchFlags::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" if quick_ok => {
                f.quick = true;
                i += 1;
            }
            "--threads" if threads_ok => {
                f.threads = Some(threads_arg(args.get(i + 1), usage)?);
                i += 2;
            }
            "--budget-bytes" if budget_ok => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --budget-bytes requires a value");
                    eprintln!("{usage}");
                    return Err(2);
                };
                match parse_bytes(v) {
                    Ok(n) => f.budget_bytes = Some(n),
                    Err(e) => {
                        eprintln!("error: invalid --budget-bytes value: {e}");
                        eprintln!("{usage}");
                        return Err(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("error: --out requires a path");
                    eprintln!("{usage}");
                    return Err(2);
                };
                f.out_path = Some(std::path::PathBuf::from(p));
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("{usage}");
                return Err(2);
            }
        }
    }
    Ok(f)
}

/// Write `json` to `--out` or stdout; a write failure decides the code.
fn emit_json(json: &str, out_path: Option<std::path::PathBuf>) -> Result<(), i32> {
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, json) {
                eprintln!("error: cannot write {}: {e}", p.display());
                return Err(1);
            }
            eprintln!("wrote {}", p.display());
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn bench_e2e(args: &[String]) -> i32 {
    const USAGE: &str = "usage: scibench bench e2e [--quick] [--out PATH]";
    let flags = match bench_flags(args, USAGE, true, false, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let quick = flags.quick;

    let host = hostinfo::available_parallelism();
    eprintln!(
        "e2e copy accounting: each pipeline under the eager (copy-everywhere) baseline, \
         then on the shared data plane{}...",
        if quick { " (quick)" } else { "" }
    );
    let (results, skipped) = e2e::run_e2e(quick);
    let mut diverged = 0;
    for r in &results {
        eprintln!(
            "  {:<6} {:<11} copies {:>6} -> {:<6} ({:>5.1}% drop)  {:>8.1} ms -> {:<8.1} ms{}",
            r.pipeline,
            r.engine,
            r.copies_before,
            r.copies_after,
            r.copy_drop * 100.0,
            r.ms_before,
            r.ms_after,
            if r.outputs_identical {
                ""
            } else {
                "  FINGERPRINT DIVERGED"
            }
        );
        if !r.outputs_identical {
            diverged += 1;
        }
    }
    for s in &skipped {
        eprintln!("  {:<6} {:<11} skipped: {}", s.pipeline, s.engine, s.status);
    }
    let json = e2e::results_to_json(&results, &skipped, host, quick);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    if diverged > 0 {
        eprintln!("error: {diverged} pipeline(s) diverged between copy modes");
        return 1;
    }
    0
}

fn bench_skew(args: &[String]) -> i32 {
    const USAGE: &str = "usage: scibench bench skew [--quick] [--out PATH]";
    let flags = match bench_flags(args, USAGE, true, false, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let quick = flags.quick;

    let host = hostinfo::available_parallelism();
    if host == 1 {
        eprintln!(
            "note: one-core host — live thread timings below are not a parallel \
             measurement; the model_imbalance columns (deterministic worker model \
             over serially measured morsel costs) are the headline numbers."
        );
    }
    eprintln!(
        "skew bench: per-patch coadd+detect on a source-skewed sky, morsel claiming \
         vs static splits{}...",
        if quick { " (quick)" } else { "" }
    );
    let run = skew::run_skew(quick);
    eprintln!(
        "  {} patches in {} morsels; hottest morsel {:.1}% of total cost",
        run.patches,
        run.morsels,
        100.0 * run.morsel_cost_nanos.iter().cloned().fold(0.0, f64::max)
            / run.morsel_cost_nanos.iter().sum::<f64>().max(1.0)
    );
    let mut bad = 0;
    for r in &run.results {
        eprintln!(
            "  workers={}  model imbalance: morsel {:.3} vs static {:.3}   steals={}  \
             ({:.1} ms vs {:.1} ms){}",
            r.workers,
            r.morsel.model_imbalance,
            r.static_split.model_imbalance,
            r.morsel.steals,
            r.morsel.ms,
            r.static_split.ms,
            if r.outputs_identical {
                ""
            } else {
                "  FINGERPRINT DIVERGED"
            }
        );
        // Bit-identity is enforced everywhere; the morsel<=static model
        // regression only on the full run — the quick smoke field is too
        // small for the scheduling gap to clear measurement noise.
        if !r.outputs_identical
            || (!quick && r.morsel.model_imbalance > r.static_split.model_imbalance + 1e-9)
        {
            bad += 1;
        }
    }
    let json = skew::results_to_json(&run, host, quick);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    if bad > 0 {
        eprintln!("error: {bad} worker count(s) diverged or scheduled worse than a static split");
        return 1;
    }
    0
}

fn bench_compress(args: &[String]) -> i32 {
    const USAGE: &str = "usage: scibench bench compress [--quick] [--out PATH]";
    let flags = match bench_flags(args, USAGE, true, false, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let quick = flags.quick;

    let host = hostinfo::available_parallelism();
    eprintln!(
        "compress bench: codec ratios at the engine boundary, run-level kernels \
         compressed vs dense, and Off-vs-Auto pipeline fingerprints{}...",
        if quick { " (quick)" } else { "" }
    );
    let run = compress::run_compress(quick);
    let mut bad = 0;
    for p in &run.planes {
        eprintln!(
            "  plane {:<9} repr={:<5} {:>8} -> {:<8} bytes ({:>6.1}x)",
            p.plane,
            p.repr.as_str(),
            p.dense_bytes,
            p.stored_bytes,
            p.ratio
        );
        // The acceptance floor: mask and variance planes must compress at
        // least 2x on this workload; noisy flux legitimately stays dense.
        if p.plane != "flux" && p.ratio < 2.0 {
            eprintln!(
                "    FAIL: {} ratio {:.2} below the 2x floor",
                p.plane, p.ratio
            );
            bad += 1;
        }
    }
    for k in &run.kernels {
        eprintln!(
            "  kernel {:<20} {:>10} ns -> {:<10} ns ({:.2}x)  bytes {:>8} -> {:<8}{}",
            k.kernel,
            k.dense_ns,
            k.compressed_ns,
            k.time_ratio,
            k.dense_bytes_read,
            k.compressed_bytes_read,
            if k.outputs_identical {
                ""
            } else {
                "  FINGERPRINT DIVERGED"
            }
        );
        // Each run-level kernel must win on time or bytes moved, and must
        // be bit-identical to the dense execution.
        if !k.outputs_identical
            || (k.compressed_ns >= k.dense_ns && k.compressed_bytes_read >= k.dense_bytes_read)
        {
            bad += 1;
        }
    }
    for p in &run.pipelines {
        eprintln!(
            "  pipeline {:<6} {:<6} {:>8.1} ms -> {:<8.1} ms{}",
            p.pipeline,
            p.engine,
            p.dense_ms,
            p.compressed_ms,
            if p.outputs_identical {
                ""
            } else {
                "  FINGERPRINT DIVERGED"
            }
        );
        if !p.outputs_identical {
            bad += 1;
        }
    }
    let json = compress::results_to_json(&run, host, quick);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    if bad > 0 {
        eprintln!("error: {bad} compression check(s) failed (ratio floor, win, or fingerprint)");
        return 1;
    }
    0
}

fn bench_serve(args: &[String]) -> i32 {
    const USAGE: &str =
        "usage: scibench bench serve [--quick] [--threads N] [--budget-bytes N] [--out PATH]";
    let flags = match bench_flags(args, USAGE, true, true, true) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let quick = flags.quick;
    let par = flags.threads.unwrap_or_else(|| Parallelism::threads(4));
    let budget_bytes = flags.budget_bytes.unwrap_or(serve::CACHE_BUDGET);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/bench sits two levels below the workspace root");

    let host = hostinfo::available_parallelism();
    eprintln!(
        "serve bench: replaying a seeded hot/cold query schedule against the resident \
         service — serial cache-on, concurrent x{} cache-on, serial cache-off{}...",
        par.workers(),
        if quick { " (quick)" } else { "" }
    );
    let run = match serve::run_serve(root, quick, par, budget_bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: workspace unreadable: {e}");
            return 1;
        }
    };
    eprintln!(
        "  {} requests: {} served ({} warm / {} cold / {} bypass), {} rejected",
        run.requests, run.served, run.warm, run.cold, run.bypass, run.rejected
    );
    eprintln!(
        "  cache: {} hits / {} misses / {} bypasses; {} entries resident ({} bytes), {} evictions",
        run.stats.hits,
        run.stats.misses,
        run.stats.bypasses,
        run.resident_entries,
        run.resident_bytes,
        run.stats.evictions
    );
    eprintln!(
        "  latency p50 {:.1}us p95 {:.1}us p99 {:.1}us | cold p50 {:.1}us vs warm p50 {:.1}us ({:.0}x)",
        run.p50_us, run.p95_us, run.p99_us, run.cold_p50_us, run.warm_p50_us, run.warm_speedup
    );
    eprintln!(
        "  copies: warm hits {} / {} bytes (must be 0/0); cache-off replay {} / {} bytes",
        run.warm_copies, run.warm_copy_bytes, run.cache_off_copies, run.cache_off_copy_bytes
    );
    eprintln!(
        "  throughput: serial {:.1} rps, concurrent {:.1} rps, cache-off {:.1} rps",
        run.requests as f64 / run.serial_s.max(1e-9),
        run.requests as f64 / run.concurrent_s.max(1e-9),
        run.requests as f64 / run.cache_off_s.max(1e-9)
    );
    eprintln!(
        "  small-budget replay ({} bytes): {} evictions ({} bytes), {} resident, matches={}",
        run.small_budget_bytes,
        run.small_stats.evictions,
        run.small_stats.evicted_bytes,
        run.small_resident_bytes,
        run.small_matches
    );
    for q in &run.queries {
        eprintln!(
            "  {:<52} x{:<4} first=[{}]{}",
            q.key,
            q.requests,
            q.first_probes.join(","),
            if q.rejected > 0 { "  rejected" } else { "" }
        );
    }
    let json = serve::results_to_json(&run, host, quick);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    if !run.violations.is_empty() {
        eprintln!("error: {} serve check(s) failed:", run.violations.len());
        for v in &run.violations {
            eprintln!("  {v}");
        }
        return 1;
    }
    0
}

fn bench_ooc(args: &[String]) -> i32 {
    const USAGE: &str = "usage: scibench bench ooc [--quick] [--out PATH]";
    let flags = match bench_flags(args, USAGE, true, false, false) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let quick = flags.quick;

    let host = hostinfo::available_parallelism();
    eprintln!(
        "ooc bench: streaming a larger-than-budget stack through the memory governor \
         at 25%/50%/unbounded budgets, then every engine analog out-of-core{}...",
        if quick { " (quick)" } else { "" }
    );
    let run = ooc::run_ooc(quick);
    eprintln!("  dataset {} bytes", run.dataset_bytes);
    for r in &run.rows {
        eprintln!(
            "  budget {:<9} ({:>10} B) chunk_rows={:<3} fp={:016x} spills={:<4} \
             reloads={:<4} peak={:>10} B  {:>8.1} ms",
            r.label,
            r.budget_bytes,
            r.chunk_rows,
            r.fingerprint,
            r.gov.spills,
            r.gov.reloads,
            r.gov.peak_resident,
            r.ms
        );
    }
    eprintln!(
        "  plancheck demand estimate {} B vs measured peak {} B (ratio {:.2}, bound {:.0}x)",
        run.estimated_demand_bytes,
        run.measured_peak_bytes,
        run.demand_ratio,
        ooc::DEMAND_FACTOR
    );
    for e in &run.engines {
        eprintln!(
            "  {:<6} {:<11} spills={:<5} spilled={:>10} B  {:>8.1} ms -> {:<8.1} ms{}",
            e.pipeline,
            e.engine,
            e.gov.spills,
            e.gov.spilled_bytes,
            e.ms_unbounded,
            e.ms_budget,
            if e.outputs_identical {
                ""
            } else {
                "  FINGERPRINT DIVERGED"
            }
        );
    }
    let json = ooc::results_to_json(&run, host, quick);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    if !run.violations.is_empty() {
        eprintln!(
            "error: {} out-of-core check(s) failed:",
            run.violations.len()
        );
        for v in &run.violations {
            eprintln!("  {v}");
        }
        return 1;
    }
    0
}

fn bench(args: &[String]) -> i32 {
    const USAGE: &str =
        "usage: scibench bench [e2e|skew|compress|serve|ooc] [--threads N] [--out PATH]";
    if args.first().map(String::as_str) == Some("e2e") {
        return bench_e2e(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("skew") {
        return bench_skew(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("compress") {
        return bench_compress(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return bench_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("ooc") {
        return bench_ooc(&args[1..]);
    }
    let flags = match bench_flags(args, USAGE, false, true, false) {
        Ok(f) => f,
        Err(code) => return code,
    };

    // The ladder: default 1/2/4/8, extended by an explicit --threads value.
    let mut levels: Vec<usize> = BENCH_LADDER.to_vec();
    if let Some(p) = flags.threads {
        levels.push(p.workers());
    }
    levels.sort_unstable();
    levels.dedup();

    let host = hostinfo::available_parallelism();
    if host == 1 {
        eprintln!("==========================================================================");
        eprintln!("WARNING: this host exposes only ONE hardware thread.");
        eprintln!("Every parallelism level below runs serially, so speedups will sit at ~1x.");
        eprintln!("These numbers are NOT a scaling curve; the JSON output is marked with");
        eprintln!("\"single_core_host\": true so downstream tooling can tell them apart.");
        eprintln!("==========================================================================");
    }
    eprintln!("benching 5 kernels at threads {levels:?} (host parallelism: {host})...");
    let results = kernels::run_bench(&levels, 2);
    for r in &results {
        eprintln!(
            "  {:<20} {:<12} threads={:<3} {:>12} ns/iter  {:>5.2}x",
            r.kernel, r.shape, r.threads, r.ns_per_iter, r.speedup_vs_serial
        );
    }
    let json = kernels::results_to_json(&results, host);
    if let Err(code) = emit_json(&json, flags.out_path) {
        return code;
    }
    0
}

fn perf_smoke(args: &[String]) -> i32 {
    const USAGE: &str = "usage: scibench perf-smoke [--threads N]";
    let mut par: Option<Parallelism> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                match threads_arg(args.get(i + 1), USAGE) {
                    Ok(p) => par = Some(p),
                    Err(code) => return code,
                }
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("{USAGE}");
                return 2;
            }
        }
    }
    // Flag beats SCIBENCH_THREADS beats the 2-thread default.
    let par = par.unwrap_or_else(|| match std::env::var(parexec::THREADS_ENV) {
        Ok(v) => match parse_threads(&v) {
            Ok(p) => p,
            Err(e) => {
                eprintln!(
                    "warning: ignoring invalid {}={v}: {e}",
                    parexec::THREADS_ENV
                );
                Parallelism::threads(2)
            }
        },
        Err(_) => Parallelism::threads(2),
    });

    eprintln!(
        "perf smoke: serial vs {} worker(s), asserting bit-identical outputs",
        par.workers()
    );
    let mut failed = 0;
    for case in kernels::suite() {
        let serial = case.run(Parallelism::Serial);
        let parallel = case.run(par);
        let ok = serial == parallel;
        println!(
            "{} {:<20} {:<12} serial={serial:016x} threads={parallel:016x}",
            if ok { "ok  " } else { "FAIL" },
            case.name,
            case.shape
        );
        if !ok {
            failed += 1;
        }
    }
    if failed == 0 {
        println!(
            "perf smoke: 5 kernels bit-identical at {} worker(s)",
            par.workers()
        );
        0
    } else {
        println!("perf smoke: {failed} kernel(s) diverged");
        1
    }
}

fn usage() -> i32 {
    eprintln!("usage: scibench <lint|bench|perf-smoke> [options]");
    eprintln!();
    eprintln!("  lint        statically verify every shipped lowering with plancheck");
    eprintln!("              options: [--verbose]");
    eprintln!("  lint --memo certify every shipped lowering for result-cache soundness");
    eprintln!("              (scimemo purity x fingerprint join) and emit the");
    eprintln!("              scimemo/v2 JSON report with live cache counters");
    eprintln!("              options: [--out PATH]");
    eprintln!("  bench       time the five hottest kernels across thread counts and");
    eprintln!("              emit BENCH_kernels.json");
    eprintln!("              options: [--threads N] [--out PATH]");
    eprintln!("  bench e2e   run every engine analog's full pipeline under the eager");
    eprintln!("              copy-everywhere baseline and the shared data plane, and");
    eprintln!("              emit BENCH_e2e.json with per-engine copy counts");
    eprintln!("              options: [--quick] [--out PATH]");
    eprintln!("  bench skew  schedule a source-skewed astro field under morsel claiming");
    eprintln!("              and static splits, and emit BENCH_skew.json with worker");
    eprintln!("              imbalance and steal counts");
    eprintln!("              options: [--quick] [--out PATH]");
    eprintln!("  bench compress");
    eprintln!("              measure per-codec compression ratios at the engine");
    eprintln!("              boundary, run-level kernels on compressed vs dense");
    eprintln!("              chunks, and Off-vs-Auto pipeline fingerprints, and");
    eprintln!("              emit BENCH_compress.json");
    eprintln!("              options: [--quick] [--out PATH]");
    eprintln!("  bench serve replay a seeded hot/cold query schedule against the");
    eprintln!("              resident service (sciserve): serial, concurrent, cache-off,");
    eprintln!("              and halved-budget (eviction) replays, all fingerprint-");
    eprintln!("              identical, warm hits zero-copy, and emit BENCH_serve.json");
    eprintln!("              options: [--quick] [--threads N] [--budget-bytes N] [--out PATH]");
    eprintln!("  bench ooc   stream a larger-than-budget stack through the memory");
    eprintln!("              governor at 25%/50%/unbounded budgets plus every engine");
    eprintln!("              analog out-of-core, gate bit-identical fingerprints and");
    eprintln!("              peak residency <= budget, and emit BENCH_ooc.json");
    eprintln!("              options: [--quick] [--out PATH]");
    eprintln!("  perf-smoke  assert serial and multi-threaded kernel outputs are");
    eprintln!("              bit-identical (CI gate)");
    eprintln!("              options: [--threads N]");
    eprintln!();
    eprintln!("  SCIBENCH_MEM_BUDGET=N[k|m|g] activates the process-wide memory");
    eprintln!("  governor for any subcommand (chunks spill to disk past the budget).");
    2
}

fn main() {
    apply_mem_budget_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => {
            const USAGE: &str =
                "usage: scibench lint [--verbose] | scibench lint --memo [--out PATH]";
            let mut verbose = false;
            let mut memo_mode = false;
            let mut out_path: Option<std::path::PathBuf> = None;
            let mut bad = None;
            let rest = &args[1..];
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--verbose" | "-v" => verbose = true,
                    "--memo" => memo_mode = true,
                    "--out" => {
                        let Some(p) = rest.get(i + 1) else {
                            eprintln!("error: --out requires a path");
                            eprintln!("{USAGE}");
                            std::process::exit(2);
                        };
                        out_path = Some(std::path::PathBuf::from(p));
                        i += 1;
                    }
                    other => bad = Some(other.to_string()),
                }
                i += 1;
            }
            if let Some(flag) = bad {
                eprintln!("error: unknown argument `{flag}`");
                eprintln!("{USAGE}");
                2
            } else if memo_mode {
                lint_memo(out_path)
            } else if out_path.is_some() {
                eprintln!("error: --out only applies to `lint --memo`");
                eprintln!("{USAGE}");
                2
            } else {
                lint(verbose)
            }
        }
        Some("bench") => bench(&args[1..]),
        Some("perf-smoke") => perf_smoke(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::parse_bytes;

    #[test]
    fn byte_suffixes_are_powers_of_1024() {
        assert_eq!(parse_bytes("4096"), Ok(4096));
        assert_eq!(parse_bytes("4k"), Ok(4 << 10));
        assert_eq!(parse_bytes("64M"), Ok(64 << 20));
        assert_eq!(parse_bytes("2g"), Ok(2 << 30));
        assert_eq!(parse_bytes(" 8 k "), Ok(8 << 10));
    }

    #[test]
    fn zero_junk_and_overflow_are_rejected() {
        // 0 is the governor's internal "unbounded" sentinel, so a literal
        // zero budget must be an error, not a silent no-op.
        assert!(parse_bytes("0").is_err());
        assert!(parse_bytes("0k").is_err());
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("12q").is_err());
        assert!(parse_bytes("-4k").is_err());
        assert!(parse_bytes("99999999999999999999g").is_err());
        assert!(
            parse_bytes("18446744073709551615k").is_err(),
            "checked_mul overflow"
        );
    }
}
