//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation section.
//!
//! Usage:
//! ```text
//! reproduce                # print everything, paper order
//! reproduce fig11 fig13    # print selected artifacts
//! reproduce --csv DIR      # also write one CSV per artifact into DIR
//! reproduce --calibrated   # calibrate kernel costs against the real
//!                          # sciops kernels on this machine first
//! reproduce scaling        # intra-node scaling table driven by a kernel
//!                          # scaling curve measured on this machine
//! reproduce --list         # list artifact ids
//! reproduce --check        # verify the paper's headline shape claims
//! ```

use scibench_core::costmodel::CostModel;
use scibench_core::experiments::{self, Setup, Step};
use scibench_core::report::Table;

fn artifact(setup: &Setup, id: &str) -> Option<Vec<Table>> {
    let t = match id {
        "table1" => {
            let (a, b) = experiments::table1();
            return Some(vec![a, b]);
        }
        "fig10a" => experiments::fig10a(),
        "fig10b" => experiments::fig10b(),
        "fig10c" => experiments::fig10c(setup),
        "fig10d" => experiments::fig10d(setup),
        "fig10e" => experiments::fig10e(setup),
        "fig10f" => experiments::fig10f(setup),
        "fig10g" => experiments::fig10g(setup),
        "fig10h" => experiments::fig10h(setup),
        "fig11" => experiments::fig11(setup),
        "fig12a" => experiments::fig12(setup, Step::Filter),
        "fig12b" => experiments::fig12(setup, Step::Mean),
        "fig12c" => experiments::fig12(setup, Step::Denoise),
        "fig12d" => experiments::fig12d(setup),
        "fig13" => experiments::fig13(setup),
        "fig14" => experiments::fig14(setup),
        "fig15" => experiments::fig15(setup),
        "chunks" => experiments::chunk_sweep(setup),
        "tf_assign" => experiments::tf_assignment(setup),
        "caching" => experiments::caching(setup),
        "ablations" => experiments::ablations(setup),
        "autotune" => experiments::autotune(setup),
        "skew" => experiments::skew_report(setup),
        "scaling" => {
            eprintln!("measuring NLM denoise scaling on this host (1/2/4/8 threads)...");
            let curve = scibench_core::costmodel::KernelScaling::measure(&[2, 4, 8]);
            experiments::kernel_scaling(setup, &curve)
        }
        _ => return None,
    };
    Some(vec![t])
}

const IDS: &[&str] = &[
    "table1",
    "fig10a",
    "fig10b",
    "fig10c",
    "fig10d",
    "fig10e",
    "fig10f",
    "fig10g",
    "fig10h",
    "fig11",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig12d",
    "fig13",
    "fig14",
    "fig15",
    "chunks",
    "tf_assign",
    "caching",
    "ablations",
    "autotune",
    "skew",
    "scaling",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in IDS {
            println!("{id}");
        }
        return;
    }
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let calibrated = args.iter().any(|a| a == "--calibrated");
    if args.iter().any(|a| a == "--check") {
        let setup = Setup::default();
        let checks = experiments::shape_checks(&setup);
        let mut failed = 0;
        for c in &checks {
            println!(
                "[{}] {}\n      {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.detail
            );
            if !c.pass {
                failed += 1;
            }
        }
        println!(
            "\n{}/{} shape checks pass",
            checks.len() - failed,
            checks.len()
        );
        std::process::exit(if failed == 0 { 0 } else { 1 });
    }

    let mut setup = Setup::default();
    if calibrated {
        eprintln!("calibrating kernel costs against the local sciops kernels...");
        setup.cm = CostModel::calibrated();
        eprintln!(
            "calibrated: denoise/volume = {:.1}s, mask/subject = {:.1}s, mean/subject = {:.2}s",
            setup.cm.neuro_denoise_per_volume,
            setup.cm.neuro_mask_per_subject,
            setup.cm.neuro_mean_per_subject
        );
    }

    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            !a.starts_with("--") && Some(a.as_str()) != csv_dir.as_ref().and_then(|p| p.to_str())
        })
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        IDS.to_vec()
    } else {
        selected
    };

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create CSV dir");
    }
    for id in ids {
        match artifact(&setup, id) {
            Some(tables) => {
                for (i, t) in tables.iter().enumerate() {
                    println!("{}", t.render());
                    if let Some(dir) = &csv_dir {
                        let name = if tables.len() > 1 {
                            format!("{id}_{i}.csv")
                        } else {
                            format!("{id}.csv")
                        };
                        std::fs::write(dir.join(name), t.to_csv()).expect("write CSV");
                    }
                }
            }
            None => {
                eprintln!("unknown artifact {id:?}; use --list");
                std::process::exit(2);
            }
        }
    }
}
