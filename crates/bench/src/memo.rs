//! The `scibench lint --memo` sweep: certify every shipped lowering for
//! result-cache soundness and emit the `scimemo/v2` report.
//!
//! The v2 schema adds a `memo_stats` block: the sweep replays every node
//! fingerprint through a live [`MemoTable`], so the previously write-only
//! hit/miss/bypass/eviction counters are surfaced in the report instead
//! of silently accumulating (see also the serve report, which carries the
//! same block for the resident cache).
//!
//! For each of the shipped configurations ([`crate::plans`]) the sweep
//! joins the engine's operator-binding tables with the workspace purity
//! table and asks [`scimemo::certify`] which nodes the future result
//! cache may serve. The acceptance bar is structural, not vacuous:
//!
//! * every payload-bearing node of every shipped config must certify
//!   (a rejection is a regression — either an undeclared label or an
//!   impure sink newly reachable from a kernel);
//! * every pipeline family must certify at least one *kernel* node set
//!   (so the sweep cannot pass by certifying only ingest);
//! * a deliberately-unsafe fixture — a plan whose operator is bound to
//!   `parexec`'s thread-count probe `auto`, an unsanctioned ambient
//!   read — must be rejected, with the witness chain naming the sink.

use std::io;
use std::path::Path;

use scibench_core::experiments::Setup;
use scilint::purity::PurityTable;
use scimemo::{
    certify, Certification, ConfigReport, FixtureReport, MemoTable, NodeClass, Report, StatsBlock,
};
use simcluster::{TaskGraph, TaskSpec};

use crate::plans::shipped_configs;

/// The sweep result: the report to serialize plus the failures that
/// decide the exit code.
pub struct MemoSweep {
    /// The full `scimemo/v1` report.
    pub report: Report,
    /// Human-readable acceptance failures (empty on a green sweep).
    pub failures: Vec<String>,
}

/// The deliberately-unsafe fixture's binding table: `fixture:auto-tile`
/// claims to run `auto`, the ambient thread-count probe in `parexec` —
/// a real workspace function whose purity verdict is `ambient_read`.
const FIXTURE_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    [
        OpBinding::new("fixture:ingest", OpClass::Source),
        OpBinding::new("fixture:auto-tile", OpClass::Kernel(&["auto"])),
    ]
};

/// Certify the unsafe fixture plan against the workspace purity table.
fn fixture_certification(purity: &PurityTable) -> Certification {
    let mut g = TaskGraph::new();
    let ingest = g.add(TaskSpec::compute("fixture:ingest", 1.0).output(1 << 20));
    g.add(TaskSpec::compute("fixture:auto-tile", 1.0).after(&[ingest]));
    certify(&g, &[FIXTURE_OPS], purity)
}

/// Run the full sweep. `root` is the workspace root (for the purity
/// analysis of the crates the kernels live in).
pub fn run_memo(root: &Path) -> io::Result<MemoSweep> {
    let purity = scilint::purity::analyze_workspace(root)?;
    let setup = Setup::default();
    let mut report = Report::default();
    let mut failures = Vec::new();

    for (level, count) in purity.summary() {
        report.purity.insert(level.to_string(), count);
    }

    for c in shipped_configs(&setup) {
        let tables = setup.profiles.op_bindings(c.engine);
        let cert = certify(&c.graph, &tables, &purity);
        let name: String = c.name.split_whitespace().collect::<Vec<_>>().join(" ");
        let mut seen = std::collections::BTreeSet::new();
        for n in cert.rejections() {
            if seen.insert(n.label) {
                failures.push(format!("{name}: `{}`: {}", n.label, n.reason));
            }
        }
        report.configs.push(ConfigReport {
            name,
            family: c.family.to_string(),
            engine: c.engine.name().to_string(),
            cert,
        });
    }

    // Every family must certify at least one node set, and the compute
    // families must certify at least one *kernel* node — sources alone do
    // not make a compute pipeline cacheable. (Ingest is the exception:
    // its plans are all sources, movement, and control plane by design.)
    for family in ["neuro", "astro", "ingest", "steps"] {
        let certified_of = |class: Option<NodeClass>| {
            report
                .configs
                .iter()
                .filter(|c| c.family == family)
                .flat_map(|c| c.cert.nodes.iter())
                .filter(|n| n.certified && class.is_none_or(|k| n.class == k))
                .count()
        };
        if certified_of(None) == 0 {
            failures.push(format!(
                "family `{family}`: no certified nodes anywhere in the sweep"
            ));
        }
        if family != "ingest" && certified_of(Some(NodeClass::Kernel)) == 0 {
            failures.push(format!(
                "family `{family}`: no certified kernel nodes anywhere in the sweep"
            ));
        }
    }

    // The gate must reject what it is built to reject.
    let fixture = fixture_certification(&purity);
    let rejected: Vec<_> = fixture.rejections().collect();
    if rejected.is_empty() {
        failures.push("fixture `unsafe-ambient`: the ambient-read plan was NOT rejected".into());
    } else {
        let n = rejected[0];
        if !n.reason.contains("ambient_read") {
            failures.push(format!(
                "fixture `unsafe-ambient`: rejected for the wrong reason: {}",
                n.reason
            ));
        }
        if !n.witness.iter().any(|h| h.contains("auto")) {
            failures.push(format!(
                "fixture `unsafe-ambient`: witness chain does not name the sink owner: {:?}",
                n.witness
            ));
        }
    }
    // Replay every node of the sweep — and the fixture's — through a live
    // `MemoTable`, so the report's stats block carries real counter
    // traffic instead of zeroes: sub-plans shared across configs surface
    // as hits, first sights as misses, and every uncertified node as a
    // bypass. The table is unbounded here; eviction behavior is covered
    // by the scimemo unit tests and measured by `scibench bench serve`.
    let mut table: MemoTable<u64> = MemoTable::new();
    let mut replay = |cert: &Certification| {
        for n in &cert.nodes {
            let fp = n.fingerprint;
            table.get_or_compute_weighed(fp, n.certified, || fp, |_| 8);
        }
    };
    for c in &report.configs {
        replay(&c.cert);
    }
    replay(&fixture);
    report.memo_stats = Some(StatsBlock {
        stats: table.stats(),
        resident_entries: table.len(),
        resident_bytes: table.resident_bytes(),
    });

    report.fixtures.push(FixtureReport {
        name: "unsafe-ambient".to_string(),
        cert: fixture,
    });

    Ok(MemoSweep { report, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/bench sits two levels below the workspace root")
    }

    #[test]
    fn sweep_is_green_and_covers_every_family() {
        let sweep = run_memo(workspace_root()).expect("workspace readable");
        assert_eq!(sweep.failures, Vec::<String>::new());
        assert_eq!(sweep.report.configs.len(), 137);
        // The stats replay surfaced live counters: shared sub-plans hit,
        // first sights miss, uncertified (infra/fixture) nodes bypass.
        let stats = sweep.report.memo_stats.expect("v2 reports carry stats");
        assert!(stats.stats.hits > 0);
        assert!(stats.stats.misses > 0);
        assert!(stats.stats.bypasses > 0);
        assert_eq!(stats.stats.evictions, 0);
        assert_eq!(stats.resident_entries as u64, stats.stats.misses);
        let fams = sweep.report.family_certified();
        for family in ["neuro", "astro", "ingest", "steps"] {
            let (tasks, certified) = fams[family];
            assert!(certified > 0, "family {family} certified nothing");
            assert!(tasks >= certified);
        }
        // The fixture is recorded as rejected in the report itself.
        let fx = &sweep.report.fixtures[0];
        assert_eq!(fx.cert.rejections().count(), 1);
    }

    #[test]
    fn fixture_rejection_carries_the_ambient_witness() {
        let purity = scilint::purity::analyze_workspace(workspace_root()).unwrap();
        let cert = fixture_certification(&purity);
        let rejected: Vec<_> = cert.rejections().collect();
        assert_eq!(rejected.len(), 1);
        assert!(
            rejected[0].reason.contains("ambient_read"),
            "{}",
            rejected[0].reason
        );
        assert!(
            rejected[0].witness.iter().any(|h| h.contains("auto")),
            "{:?}",
            rejected[0].witness
        );
    }

    #[test]
    fn report_json_is_stable_across_runs_in_process() {
        let a = run_memo(workspace_root()).unwrap().report.to_json();
        let b = run_memo(workspace_root()).unwrap().report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"scimemo/v2\""));
        assert!(a.contains("\"memo_stats\""));
    }
}
