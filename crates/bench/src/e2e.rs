//! End-to-end pipeline benchmarks with copy accounting: each engine
//! analog's full use-case pipeline, run twice — once under
//! [`CopyMode::Eager`] (every chunk-handle clone deep-copies, the
//! copy-everywhere baseline this workspace shipped before the shared data
//! plane) and once under [`CopyMode::Shared`] (clones are refcount bumps;
//! only COW mutations and sanctioned architectural copies touch memory).
//!
//! The two runs must produce bit-identical outputs (the fingerprints are
//! compared), so the copy counts and wall times are measurements of the
//! data plane alone, not of a different computation. Results serialize as
//! `BENCH_e2e.json` (schema `scibench-bench-e2e/v1`).

use crate::kernels::Fingerprint;
use marray::{with_copy_mode, CopyCounter, CopyMode, CopyStats};
use scibench_core::usecases::astro as astro_uc;
use scibench_core::usecases::neuro as neuro_uc;
use sciops::synth::dmri::{DmriPhantom, DmriSpec};
use sciops::synth::sky::{SkySpec, SkySurvey};
use std::sync::Arc;
use std::time::Instant;

/// One end-to-end benchmarkable pipeline on one engine analog.
pub struct E2eCase {
    /// Use case: `"neuro"` or `"astro"`.
    pub pipeline: &'static str,
    /// Engine analog: `spark`, `myria`, `dask`, `tensorflow` or `scidb`.
    pub engine: &'static str,
    runner: Box<dyn Fn() -> u64>,
}

impl E2eCase {
    /// Run the pipeline once; returns the output fingerprint.
    pub fn run(&self) -> u64 {
        (self.runner)()
    }
}

/// A pipeline/engine combination the paper reports as absent, carried in
/// the JSON so the gap is documented rather than silent.
#[derive(Debug, Clone)]
pub struct E2eSkip {
    /// Use case.
    pub pipeline: &'static str,
    /// Engine analog.
    pub engine: &'static str,
    /// Why there is no measurement (the paper's reason).
    pub status: String,
}

/// One engine's before/after measurement.
#[derive(Debug, Clone)]
pub struct E2eResult {
    /// Use case.
    pub pipeline: &'static str,
    /// Engine analog.
    pub engine: &'static str,
    /// Deep copies under the eager (copy-everywhere) baseline.
    pub copies_before: u64,
    /// Bytes deep-copied under the eager baseline.
    pub bytes_before: u64,
    /// Wall milliseconds for the eager run.
    pub ms_before: f64,
    /// Deep copies on the shared data plane (COW + sanctioned only).
    pub copies_after: u64,
    /// Bytes deep-copied on the shared data plane.
    pub bytes_after: u64,
    /// Wall milliseconds for the shared run.
    pub ms_after: f64,
    /// `1 - after/before` (0 when the baseline itself made no copies).
    pub copy_drop: f64,
    /// The copies that remain, by reason tag (the architectural ones).
    pub reasons_after: Vec<(String, u64)>,
    /// Eager and shared fingerprints matched bit for bit.
    pub outputs_identical: bool,
}

pub(crate) fn subjects(n: usize) -> Vec<neuro_uc::Subject> {
    let spec = DmriSpec::test_scale();
    (0..n)
        .map(|i| {
            let phantom = DmriPhantom::generate(7000 + i as u64, &spec);
            neuro_uc::Subject::from_phantom(i as u32, &phantom)
        })
        .collect()
}

pub(crate) fn fingerprint_fa(out: &std::collections::BTreeMap<u32, marray::NdArray<f64>>) -> u64 {
    let mut fp = Fingerprint::new();
    for (id, fa) in out {
        fp.push_usize(*id as usize);
        fp.push_slice(fa.data());
    }
    fp.finish()
}

pub(crate) fn fingerprint_astro(r: &astro_uc::AstroResult) -> u64 {
    let mut fp = Fingerprint::new();
    for (patch, flux) in &r.coadd_flux {
        fp.push_usize(patch.0 as usize);
        fp.push_usize(patch.1 as usize);
        fp.push_slice(flux.data());
    }
    for sources in r.catalogs.values() {
        fp.push_usize(sources.len());
        for s in sources {
            fp.push_f64(s.centroid.0);
            fp.push_f64(s.centroid.1);
            fp.push_f64(s.flux);
            fp.push_f64(s.peak);
            fp.push_usize(s.npix);
        }
    }
    fp.finish()
}

/// The runnable pipeline/engine matrix: neuroscience on all five analogs;
/// astronomy on Spark, Myria and the SciDB-style coadd (Dask froze on the
/// paper's cluster, TensorFlow was neuroscience-only). `quick` shrinks the
/// subject count for CI.
pub fn suite(quick: bool) -> (Vec<E2eCase>, Vec<E2eSkip>) {
    let mut cases = Vec::new();
    let subs = Arc::new(subjects(if quick { 1 } else { 2 }));

    {
        let subs = Arc::clone(&subs);
        cases.push(E2eCase {
            pipeline: "neuro",
            engine: "spark",
            runner: Box::new(move || fingerprint_fa(&neuro_uc::spark(&subs, 8))),
        });
    }
    {
        let subs = Arc::clone(&subs);
        cases.push(E2eCase {
            pipeline: "neuro",
            engine: "myria",
            runner: Box::new(move || fingerprint_fa(&neuro_uc::myria(&subs, 4, 2))),
        });
    }
    {
        let subs = Arc::clone(&subs);
        cases.push(E2eCase {
            pipeline: "neuro",
            engine: "dask",
            runner: Box::new(move || fingerprint_fa(&neuro_uc::dask(&subs, 8))),
        });
    }
    {
        let subs = Arc::clone(&subs);
        cases.push(E2eCase {
            pipeline: "neuro",
            engine: "tensorflow",
            runner: Box::new(move || {
                let out = neuro_uc::tensorflow(&subs);
                let mut fp = Fingerprint::new();
                for (id, v) in out.mean_b0.iter().chain(out.denoised0.iter()) {
                    fp.push_usize(*id as usize);
                    fp.push_slice(v.data());
                }
                fp.finish()
            }),
        });
    }
    {
        let subs = Arc::clone(&subs);
        cases.push(E2eCase {
            pipeline: "neuro",
            engine: "scidb",
            runner: Box::new(move || {
                let out = neuro_uc::scidb(&subs);
                let mut fp = Fingerprint::new();
                for (id, v) in out.mean_b0.iter().chain(out.denoised.iter()) {
                    fp.push_usize(*id as usize);
                    fp.push_slice(v.data());
                }
                fp.finish()
            }),
        });
    }

    let survey = Arc::new(SkySurvey::generate(99, &SkySpec::test_scale()));
    {
        let survey = Arc::clone(&survey);
        cases.push(E2eCase {
            pipeline: "astro",
            engine: "spark",
            runner: Box::new(move || fingerprint_astro(&astro_uc::spark(&survey, 6))),
        });
    }
    {
        let survey = Arc::clone(&survey);
        cases.push(E2eCase {
            pipeline: "astro",
            engine: "myria",
            runner: Box::new(move || fingerprint_astro(&astro_uc::myria(&survey, 4, 1))),
        });
    }
    {
        // SciDB: the pure-AQL clipped coadd over one patch's visit cube.
        let cube = Arc::new(patch_cube(&survey));
        cases.push(E2eCase {
            pipeline: "astro",
            engine: "scidb",
            runner: Box::new(move || {
                let db = engine_array::ArrayDb::connect(4);
                let out = astro_uc::scidb_coadd_cube(&db, &cube, 8).expect("scidb coadd runs");
                let mut fp = Fingerprint::new();
                fp.push_slice(out.data());
                fp.finish()
            }),
        });
    }

    let skipped = vec![
        E2eSkip {
            pipeline: "astro",
            engine: "dask",
            status: astro_uc::DASK_ASTRO_STATUS.to_string(),
        },
        E2eSkip {
            pipeline: "astro",
            engine: "tensorflow",
            status: "not attempted (the paper's TensorFlow implementation covers only the \
                     neuroscience use case)"
                .to_string(),
        },
    ];
    (cases, skipped)
}

/// Build the `(visit, rows, cols)` cube of merged exposures for the first
/// patch of `survey` (the SciDB coadd's ingest input).
fn patch_cube(survey: &SkySurvey) -> marray::NdArray<f64> {
    let grid = survey.patch_grid();
    let (calib, _, _) = astro_uc::astro_params();
    let patch_box = grid.patch_box((0, 0));
    let visits = survey.visits.len();
    let rows = patch_box.height as usize;
    let cols = patch_box.width as usize;
    let mut cube = marray::NdArray::<f64>::zeros(&[visits, rows, cols]);
    for (v, exposures) in survey.visits.iter().enumerate() {
        let calibrated: Vec<_> = exposures
            .iter()
            .map(|e| sciops::astro::calibrate_exposure(e, &calib))
            .collect();
        let pieces: Vec<_> = calibrated
            .iter()
            .filter_map(|e| e.crop_to(&patch_box))
            .collect();
        let merged = sciops::astro::pipeline::merge_visit_pieces(&patch_box, &pieces);
        let slice = merged
            .flux
            .clone()
            .reshape(&[1, rows, cols])
            .expect("rank-3 slice");
        cube.write_subarray(&[v, 0, 0], &slice).expect("cube slice");
    }
    cube
}

/// Run `case` once under `mode`, returning (fingerprint, copy delta, ms).
fn measure(case: &E2eCase, mode: CopyMode) -> (u64, CopyStats, f64) {
    with_copy_mode(mode, || {
        let before = CopyCounter::snapshot();
        let t = Instant::now();
        let fp = case.run();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        (fp, CopyCounter::snapshot().since(&before), ms)
    })
}

/// Run the whole matrix: every case under the eager baseline, then under
/// the shared data plane, asserting fingerprint equality between modes.
pub fn run_e2e(quick: bool) -> (Vec<E2eResult>, Vec<E2eSkip>) {
    let (cases, skipped) = suite(quick);
    let mut results = Vec::new();
    for case in &cases {
        let (fp_eager, eager, ms_before) = measure(case, CopyMode::Eager);
        let (fp_shared, shared, ms_after) = measure(case, CopyMode::Shared);
        let copy_drop = if eager.copies > 0 {
            1.0 - shared.copies as f64 / eager.copies as f64
        } else {
            0.0
        };
        results.push(E2eResult {
            pipeline: case.pipeline,
            engine: case.engine,
            copies_before: eager.copies,
            bytes_before: eager.bytes,
            ms_before,
            copies_after: shared.copies,
            bytes_after: shared.bytes,
            ms_after,
            copy_drop,
            reasons_after: shared
                .by_reason
                .iter()
                .map(|(k, v)| (k.clone(), v.copies))
                .collect(),
            outputs_identical: fp_eager == fp_shared,
        });
    }
    (results, skipped)
}

/// Render e2e results as the `BENCH_e2e.json` document
/// (schema `scibench-bench-e2e/v1`). Hand-rolled like
/// [`crate::kernels::results_to_json`]: no JSON dependency in the
/// workspace.
pub fn results_to_json(
    results: &[E2eResult],
    skipped: &[E2eSkip],
    host_parallelism: usize,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-e2e/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let reasons = r
            .reasons_after
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"pipeline\": \"{}\", \"engine\": \"{}\", \"copies_before\": {}, \
             \"bytes_before\": {}, \"ms_before\": {:.2}, \"copies_after\": {}, \
             \"bytes_after\": {}, \"ms_after\": {:.2}, \"copy_drop\": {:.4}, \
             \"outputs_identical\": {}, \"reasons_after\": {{{reasons}}}}}{}\n",
            r.pipeline,
            r.engine,
            r.copies_before,
            r.bytes_before,
            r.ms_before,
            r.copies_after,
            r.bytes_after,
            r.ms_after,
            r.copy_drop,
            r.outputs_identical,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"skipped\": [\n");
    for (i, s) in skipped.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pipeline\": \"{}\", \"engine\": \"{}\", \"status\": \"{}\"}}{}\n",
            s.pipeline,
            s.engine,
            s.status,
            if i + 1 < skipped.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_five_engines_on_neuro_and_documents_astro_gaps() {
        let (cases, skipped) = suite(true);
        let neuro: Vec<&str> = cases
            .iter()
            .filter(|c| c.pipeline == "neuro")
            .map(|c| c.engine)
            .collect();
        assert_eq!(neuro, ["spark", "myria", "dask", "tensorflow", "scidb"]);
        let astro: Vec<&str> = cases
            .iter()
            .filter(|c| c.pipeline == "astro")
            .map(|c| c.engine)
            .collect();
        assert_eq!(astro, ["spark", "myria", "scidb"]);
        assert!(skipped
            .iter()
            .any(|s| s.pipeline == "astro" && s.engine == "dask"));
        assert!(skipped
            .iter()
            .any(|s| s.pipeline == "astro" && s.engine == "tensorflow"));
    }

    #[test]
    fn json_schema_and_fields_are_stable() {
        let results = vec![E2eResult {
            pipeline: "neuro",
            engine: "spark",
            copies_before: 100,
            bytes_before: 800_000,
            ms_before: 12.5,
            copies_after: 10,
            bytes_after: 80_000,
            ms_after: 9.0,
            copy_drop: 0.9,
            reasons_after: vec![("cow".to_string(), 10)],
            outputs_identical: true,
        }];
        let skipped = vec![E2eSkip {
            pipeline: "astro",
            engine: "dask",
            status: "frozen".to_string(),
        }];
        let json = results_to_json(&results, &skipped, 1, true);
        assert!(json.contains("\"schema\": \"scibench-bench-e2e/v1\""));
        assert!(json.contains("\"single_core_host\": true"));
        assert!(json.contains("\"copies_before\": 100"));
        assert!(json.contains("\"copy_drop\": 0.9000"));
        assert!(json.contains("\"reasons_after\": {\"cow\": 10}"));
        assert!(json.contains("\"skipped\""));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
