//! The shipped-configuration catalog: every lowered plan `scibench lint`
//! verifies, enumerated once so the plancheck sweep and the scimemo
//! cacheability sweep cannot drift apart.
//!
//! The set mirrors the paper's evaluation matrix: the neuroscience
//! end-to-end pipelines over Figure 10's subject sweep, the astronomy
//! pipelines (including Myria's three memory-management modes and the
//! Figure 15 OOM configuration), Figure 11's ingest configurations, and
//! Figure 12's individual steps — at 16 and 64 nodes where the figures
//! sweep cluster size.

use engine_rel::ExecutionMode;
use scibench_core::experiments::{tuned_partitions, Setup};
use scibench_core::lower::{astro, ingest, neuro, steps, Engine};
use scibench_core::workload::{AstroWorkload, NeuroWorkload};
use simcluster::{ClusterSpec, TaskGraph};

/// Node counts the lint/memo sweeps check (the paper's smallest and
/// largest full-figure cluster sizes).
pub const NODE_SWEEP: [usize; 2] = [16, 64];

/// One shipped lowering with everything the static sweeps need.
pub struct ShippedConfig {
    /// Row name, exactly as `scibench lint` prints it.
    pub name: String,
    /// Pipeline family: `neuro`, `astro`, `ingest`, or `steps`.
    pub family: &'static str,
    /// The engine that produced the lowering.
    pub engine: Engine,
    /// The lowered plan.
    pub graph: TaskGraph,
    /// The cluster it targets.
    pub cluster: ClusterSpec,
    /// Whether this configuration is *supposed* to overrun memory
    /// (Figure 15: Myria pipelined, 24 visits, 16 nodes).
    pub memory_expected: bool,
}

/// Lower every shipped configuration under `setup`.
pub fn shipped_configs(setup: &Setup) -> Vec<ShippedConfig> {
    let mut out = Vec::new();

    // Neuroscience, end-to-end and partial pipelines, Figure 10's sweep.
    for &nodes in &NODE_SWEEP {
        for w in NeuroWorkload::sweep() {
            for engine in [
                Engine::Dask,
                Engine::Myria,
                Engine::Spark,
                Engine::TensorFlow,
                Engine::SciDb,
            ] {
                let cluster = setup.cluster_for(engine, nodes);
                let graph = match engine {
                    Engine::Spark => neuro::spark(
                        &w,
                        &setup.cm,
                        &setup.profiles,
                        &cluster,
                        Some(tuned_partitions(&cluster)),
                        true,
                    ),
                    Engine::Myria => neuro::myria(&w, &setup.cm, &setup.profiles, &cluster),
                    Engine::Dask => neuro::dask(&w, &setup.cm, &setup.profiles, &cluster),
                    Engine::TensorFlow => {
                        neuro::tensorflow(&w, &setup.cm, &setup.profiles, &cluster)
                    }
                    Engine::SciDb => {
                        neuro::scidb_steps(&w, &setup.cm, &setup.profiles, &cluster, true)
                    }
                };
                out.push(ShippedConfig {
                    name: format!(
                        "neuro e2e        {:<10} subjects={:<2} nodes={nodes}",
                        engine.name(),
                        w.subjects
                    ),
                    family: "neuro",
                    engine,
                    graph,
                    cluster,
                    memory_expected: false,
                });
            }
        }
    }

    // Astronomy: Spark, Myria's three memory-management modes, and the
    // SciDB co-addition step, over Figure 10's visit sweep.
    for &nodes in &NODE_SWEEP {
        for w in AstroWorkload::sweep() {
            let cluster = setup.cluster_for(Engine::Spark, nodes);
            out.push(ShippedConfig {
                name: format!(
                    "astro e2e        {:<10} visits={:<2}   nodes={nodes}",
                    "Spark", w.visits
                ),
                family: "astro",
                engine: Engine::Spark,
                graph: astro::spark(&w, &setup.cm, &setup.profiles, &cluster),
                cluster,
                memory_expected: false,
            });

            let cluster = setup.cluster_for(Engine::Myria, nodes);
            // Figure 15: pipelined execution exhausts memory only in the
            // full 24-visit configuration on 16 nodes (the two hottest
            // patches hash to one worker); both disk-backed modes stay
            // within budget everywhere.
            let oom = nodes == 16 && w.visits == 24;
            for (mode, tag, expect_oom) in [
                (ExecutionMode::Pipelined, "pipelined", oom),
                (ExecutionMode::Materialized, "materialized", false),
                (ExecutionMode::MultiQuery { pieces: 4 }, "multiquery", false),
            ] {
                let (graph, _strict) = astro::myria(&w, &setup.cm, &setup.profiles, &cluster, mode);
                out.push(ShippedConfig {
                    name: format!(
                        "astro {tag:<10} {:<10} visits={:<2}   nodes={nodes}",
                        "Myria", w.visits
                    ),
                    family: "astro",
                    engine: Engine::Myria,
                    graph,
                    cluster: cluster.clone(),
                    memory_expected: expect_oom,
                });
            }

            let cluster = setup.cluster_for(Engine::SciDb, nodes);
            out.push(ShippedConfig {
                name: format!(
                    "astro coadd      {:<10} visits={:<2}   nodes={nodes}",
                    "SciDB", w.visits
                ),
                family: "astro",
                engine: Engine::SciDb,
                graph: astro::scidb_coadd(&w, &setup.cm, &setup.profiles, &cluster, 1000),
                cluster,
                memory_expected: false,
            });
        }
    }

    // Ingest, Figure 11's six configurations at the largest subject count.
    let w = NeuroWorkload { subjects: 25 };
    for &nodes in &NODE_SWEEP {
        let configs: [(&str, Engine); 6] = [
            ("Dask", Engine::Dask),
            ("Myria", Engine::Myria),
            ("Spark", Engine::Spark),
            ("TensorFlow", Engine::TensorFlow),
            ("SciDB-1", Engine::SciDb),
            ("SciDB-2", Engine::SciDb),
        ];
        for (label, engine) in configs {
            let cluster = setup.cluster_for(engine, nodes);
            let graph = match label {
                "Dask" => ingest::dask(&w, &setup.cm, &setup.profiles, &cluster),
                "Myria" => ingest::myria(&w, &setup.cm, &setup.profiles, &cluster),
                "Spark" => ingest::spark(&w, &setup.cm, &setup.profiles, &cluster),
                "TensorFlow" => ingest::tensorflow(&w, &setup.cm, &setup.profiles, &cluster),
                "SciDB-1" => ingest::scidb_from_array(&w, &setup.cm, &setup.profiles, &cluster),
                _ => ingest::scidb_aio(&w, &setup.cm, &setup.profiles, &cluster),
            };
            out.push(ShippedConfig {
                name: format!("ingest           {label:<10} subjects=25 nodes={nodes}"),
                family: "ingest",
                engine,
                graph,
                cluster,
                memory_expected: false,
            });
        }
    }

    // Individual steps, Figure 12's per-operation comparisons.
    for engine in [
        Engine::Spark,
        Engine::Myria,
        Engine::Dask,
        Engine::TensorFlow,
        Engine::SciDb,
    ] {
        let cluster = setup.cluster_for(engine, 16);
        for (step, graph) in [
            (
                "filter",
                steps::filter_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
            ),
            (
                "mean",
                steps::mean_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
            ),
            (
                "denoise",
                steps::denoise_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
            ),
        ] {
            out.push(ShippedConfig {
                name: format!("step {step:<12} {:<10} subjects=25 nodes=16", engine.name()),
                family: "steps",
                engine,
                graph,
                cluster: cluster.clone(),
                memory_expected: false,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_full_evaluation_matrix() {
        let configs = shipped_configs(&Setup::default());
        assert_eq!(configs.len(), 137);
        let fam = |f: &str| configs.iter().filter(|c| c.family == f).count();
        assert_eq!(fam("neuro"), 60);
        assert_eq!(fam("astro"), 50);
        assert_eq!(fam("ingest"), 12);
        assert_eq!(fam("steps"), 15);
        assert_eq!(
            configs.iter().filter(|c| c.memory_expected).count(),
            1,
            "exactly the Figure 15 configuration expects an OOM"
        );
    }
}
