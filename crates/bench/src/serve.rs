//! The `scibench bench serve` harness: replay a deterministic, seeded
//! schedule of mixed hot/cold queries against the resident service
//! ([`sciserve`]) and measure what the certified result cache buys.
//!
//! Four replays of the *same* schedule:
//!
//! 1. **serial, cache on** — per-request latency (cold = any stage
//!    missed, warm = every stage hit) and a per-request `CopyCounter`
//!    ledger delta: every all-hit request must move **zero** copies and
//!    zero bytes, the tentpole claim;
//! 2. **concurrent, cache on** — the same schedule fanned across a
//!    `MorselPool`; every response must be byte-identical to the serial
//!    replay;
//! 3. **serial, cache off** — the baseline the speedup is measured
//!    against; every response must again be byte-identical, proving the
//!    cache never changes a payload byte;
//! 4. **serial, small budget** — the cache squeezed to half the measured
//!    resident footprint: LRU eviction must fire, residency must stay
//!    within the budget, and the responses must still be byte-identical
//!    (an evicted entry recomputes to the same bits by its certificate).
//!
//! The schedule always contains the uncertified ambient-read fixture
//! (must bypass on every request) and the Figure 15 Myria-pipelined
//! plan (must be refused at admission on every request). On the full
//! run the harness also enforces the headline: warm-hit p50 latency at
//! least 100x below cold p50.

use std::io;
use std::path::Path;
use std::time::Instant;

use marray::CopyCounter;
use parexec::Parallelism;
use scibench_core::lower::Engine;
use scimemo::MemoStats;
use sciserve::{demo_catalog, AstroMode, Pipeline, QueryDesc, ServeOutcome, Server};

/// Default result-cache byte budget for the replay servers (overridable
/// with `--budget-bytes`): generous enough that the demo catalog's
/// working set stays fully resident. Eviction under pressure is measured
/// live by the small-budget replay, which re-runs the schedule with the
/// budget squeezed below the measured resident footprint.
pub const CACHE_BUDGET: u64 = 256 << 20;

/// How one request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Every stage served from the cache.
    Warm,
    /// At least one stage computed and admitted.
    Cold,
    /// Served, but through the uncertified bypass path.
    Bypass,
    /// Refused before execution.
    Rejected,
}

fn classify(o: &ServeOutcome) -> Class {
    match o.response() {
        None => Class::Rejected,
        Some(r) if r.any_miss() => Class::Cold,
        Some(r) if r.all_hits() => Class::Warm,
        Some(_) => Class::Bypass,
    }
}

/// Per-distinct-query aggregates for the report.
pub struct QuerySummary {
    /// The query key.
    pub key: String,
    /// Requests issued for this query across the schedule.
    pub requests: usize,
    /// How many were refused (all or none, by determinism).
    pub rejected: usize,
    /// Stage probes of the query's *first* serve — where a cold query
    /// rides a warm prefix of an earlier plan, this reads e.g.
    /// `["hit", "hit", "miss"]`.
    pub first_probes: Vec<&'static str>,
    /// Latency of the first (cold) serve, microseconds.
    pub cold_us: Option<f64>,
    /// Median latency of this query's warm serves, microseconds.
    pub warm_p50_us: Option<f64>,
}

/// Everything `scibench bench serve` reports and gates on.
pub struct ServeRun {
    /// Schedule length (each replay issues exactly these requests).
    pub requests: usize,
    /// Served requests in the serial replay.
    pub served: usize,
    /// Refused requests in the serial replay.
    pub rejected: usize,
    /// All-stages-hit requests.
    pub warm: usize,
    /// Any-stage-missed requests.
    pub cold: usize,
    /// Bypass-path requests (the uncertified fixture).
    pub bypass: usize,
    /// Result-cache counters after the serial replay.
    pub stats: MemoStats,
    /// Resident cache entries after the serial replay.
    pub resident_entries: usize,
    /// Resident cache bytes after the serial replay.
    pub resident_bytes: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Latency percentiles over served requests, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Median cold latency, microseconds.
    pub cold_p50_us: f64,
    /// Median warm latency, microseconds.
    pub warm_p50_us: f64,
    /// `cold_p50_us / warm_p50_us`.
    pub warm_speedup: f64,
    /// Wall-clock seconds for the serial cache-on replay.
    pub serial_s: f64,
    /// Wall-clock seconds for the concurrent cache-on replay.
    pub concurrent_s: f64,
    /// Wall-clock seconds for the serial cache-off replay.
    pub cache_off_s: f64,
    /// Copy-ledger delta over the whole serial cache-on replay.
    pub serial_copies: u64,
    /// Bytes moved over the whole serial cache-on replay.
    pub serial_copy_bytes: u64,
    /// Copy-ledger delta summed over all-hit requests (must be zero).
    pub warm_copies: u64,
    /// Bytes moved summed over all-hit requests (must be zero).
    pub warm_copy_bytes: u64,
    /// Copy-ledger delta over the whole cache-off replay.
    pub cache_off_copies: u64,
    /// Bytes moved over the whole cache-off replay.
    pub cache_off_copy_bytes: u64,
    /// Concurrent replay byte-identical to serial.
    pub concurrent_matches: bool,
    /// Cache-off replay byte-identical to cache-on.
    pub cache_off_matches: bool,
    /// Byte budget of the small-budget replay (half the measured
    /// resident footprint, so eviction must fire).
    pub small_budget_bytes: u64,
    /// Result-cache counters after the small-budget replay — its
    /// `evictions` is the live LRU-eviction measurement.
    pub small_stats: MemoStats,
    /// Resident cache bytes after the small-budget replay (must sit at
    /// or under the small budget).
    pub small_resident_bytes: u64,
    /// Small-budget replay byte-identical to the full-budget replay.
    pub small_matches: bool,
    /// Per-distinct-query aggregates.
    pub queries: Vec<QuerySummary>,
    /// Acceptance failures (empty on a green run).
    pub violations: Vec<String>,
}

/// The distinct queries in the schedule with their draw weights. The mix
/// deliberately spans hot repeats, prefix-sharing chains (`segment` ⊂
/// `denoise` ⊂ `fa` on the same engine+dataset), a second dataset
/// version, the uncertified fixture, and the Figure 15 rejection.
fn query_mix() -> Vec<(QueryDesc, u32)> {
    vec![
        (
            QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1),
            18,
        ),
        (
            QueryDesc::new(Engine::Dask, Pipeline::NeuroSegment, "dmri", 1),
            8,
        ),
        (
            QueryDesc::new(Engine::TensorFlow, Pipeline::NeuroSegment, "dmri", 1),
            5,
        ),
        (
            QueryDesc::new(Engine::Spark, Pipeline::NeuroDenoise, "dmri", 1),
            12,
        ),
        (
            QueryDesc::new(Engine::Spark, Pipeline::NeuroFa, "dmri", 1),
            14,
        ),
        (
            QueryDesc::new(Engine::Myria, Pipeline::NeuroFa, "dmri", 1),
            6,
        ),
        (
            QueryDesc::new(Engine::Dask, Pipeline::NeuroFa, "dmri", 2),
            5,
        ),
        (
            QueryDesc::new(Engine::Spark, Pipeline::AstroFull, "hits", 1),
            10,
        ),
        (
            QueryDesc::new(Engine::Myria, Pipeline::AstroFull, "hits", 1),
            6,
        ),
        (
            QueryDesc::new(Engine::SciDb, Pipeline::AstroCoadd, "hits-cube", 1),
            6,
        ),
        (
            QueryDesc::new(Engine::Spark, Pipeline::FixtureAmbient, "dmri", 1),
            6,
        ),
        (
            QueryDesc::new(Engine::Myria, Pipeline::AstroFull, "hits-deep", 1)
                .with_mode(AstroMode::Pipelined),
            4,
        ),
    ]
}

/// The deterministic schedule: one prologue pass over every distinct
/// query (the cold section), then seeded weighted draws up to `n`
/// requests. Returns `(schedule, index-into-mix per request)`.
fn schedule(n: usize) -> (Vec<QueryDesc>, Vec<usize>) {
    let mix = query_mix();
    let total: u64 = mix.iter().map(|(_, w)| u64::from(*w)).sum();
    let mut sched = Vec::with_capacity(n);
    let mut which = Vec::with_capacity(n);
    for (i, (q, _)) in mix.iter().enumerate() {
        sched.push(q.clone());
        which.push(i);
    }
    // A fixed-seed LCG (PCG-style multiplier) so every run of the bench
    // replays the identical request stream.
    let mut state: u64 = 0x5eed_cafe_f00d_d00d;
    while sched.len() < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut draw = (state >> 33) % total;
        for (i, (q, w)) in mix.iter().enumerate() {
            if draw < u64::from(*w) {
                sched.push(q.clone());
                which.push(i);
                break;
            }
            draw -= u64::from(*w);
        }
    }
    (sched, which)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn fingerprints(outcomes: &[ServeOutcome]) -> Vec<Option<u64>> {
    outcomes
        .iter()
        .map(|o| o.response().map(|r| r.fingerprint))
        .collect()
}

fn probe_name(p: scimemo::Probe) -> &'static str {
    match p {
        scimemo::Probe::Hit => "hit",
        scimemo::Probe::Miss => "miss",
        scimemo::Probe::Bypass => "bypass",
    }
}

/// Run the full serve bench. `root` is the workspace root (for the purity
/// analysis backing certification); `par` sizes the concurrent replay;
/// `budget_bytes` bounds the result cache of the cache-on replays (the
/// small-budget replay derives its own, tighter budget).
pub fn run_serve(
    root: &Path,
    quick: bool,
    par: Parallelism,
    budget_bytes: u64,
) -> io::Result<ServeRun> {
    let n = if quick { 160 } else { 2400 };
    let (sched, which) = schedule(n);
    let mix = query_mix();
    let purity = scilint::purity::analyze_workspace(root)?;
    let mut violations = Vec::new();

    // Replay 1: serial, cache on — per-request latency and copy ledger.
    let server = Server::new(demo_catalog(quick), purity.clone()).with_cache_budget(budget_bytes);
    let t0 = Instant::now();
    let mut outcomes = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    let mut warm_copies = 0u64;
    let mut warm_copy_bytes = 0u64;
    let ledger0 = CopyCounter::snapshot();
    for q in &sched {
        let before = CopyCounter::snapshot();
        let o = server.serve_one(q);
        let delta = CopyCounter::snapshot().since(&before);
        let class = classify(&o);
        if class == Class::Warm {
            warm_copies += delta.copies;
            warm_copy_bytes += delta.bytes;
        }
        classes.push(class);
        outcomes.push(o);
    }
    let serial_ledger = CopyCounter::snapshot().since(&ledger0);
    let serial_s = t0.elapsed().as_secs_f64();
    if warm_copies != 0 || warm_copy_bytes != 0 {
        violations.push(format!(
            "warm hits moved data: {warm_copies} copies / {warm_copy_bytes} bytes (must be 0/0)"
        ));
    }

    // Per-class latency stats.
    let us_of = |class: Class| -> Vec<f64> {
        let mut v: Vec<f64> = outcomes
            .iter()
            .zip(&classes)
            .filter(|(_, c)| **c == class)
            .filter_map(|(o, _)| o.response().map(|r| r.micros))
            .collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    };
    let mut all_us: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.response().map(|r| r.micros))
        .collect();
    all_us.sort_by(|a, b| a.total_cmp(b));
    let cold_us = us_of(Class::Cold);
    let warm_us = us_of(Class::Warm);
    let cold_p50_us = percentile(&cold_us, 0.5);
    let warm_p50_us = percentile(&warm_us, 0.5);
    let warm_speedup = if warm_p50_us > 0.0 {
        cold_p50_us / warm_p50_us
    } else {
        f64::INFINITY
    };
    // The headline gate rides the full run only: the quick schedule is
    // small enough for timer noise to matter.
    if !quick && warm_speedup < 100.0 {
        violations.push(format!(
            "warm p50 {warm_p50_us:.1}us is only {warm_speedup:.1}x below cold p50 \
             {cold_p50_us:.1}us (require >= 100x)"
        ));
    }

    // Structural expectations: the fixture always bypasses, the
    // Figure 15 plan is always refused, everything else is served.
    for ((o, c), qi) in outcomes.iter().zip(&classes).zip(&which) {
        let q = &mix[*qi].0;
        match q.pipeline {
            Pipeline::FixtureAmbient => {
                if *c != Class::Bypass {
                    violations.push(format!("fixture request not bypassed: {}", q.key()));
                }
            }
            Pipeline::AstroFull if q.dataset == "hits-deep" => {
                if *c != Class::Rejected {
                    violations.push(format!("Figure 15 plan was not refused: {}", q.key()));
                } else if let ServeOutcome::Rejected { reason, .. } = o {
                    if !reason.contains("admission") {
                        violations
                            .push(format!("hits-deep refused for the wrong reason: {reason}"));
                    }
                }
            }
            _ => {
                if *c == Class::Rejected {
                    violations.push(format!("unexpected rejection: {}", q.key()));
                }
            }
        }
    }

    let stats = server.cache_stats();
    let resident_entries = server.cache_len();
    let resident_bytes = server.cache_bytes();

    // Replay 2: concurrent, cache on, fresh server — byte-identity vs
    // the serial replay.
    let concurrent =
        Server::new(demo_catalog(quick), purity.clone()).with_cache_budget(budget_bytes);
    let concurrent = concurrent.with_parallelism(par);
    let t1 = Instant::now();
    let conc_outcomes = concurrent.serve_batch(&sched);
    let concurrent_s = t1.elapsed().as_secs_f64();
    let concurrent_matches = fingerprints(&outcomes) == fingerprints(&conc_outcomes);
    if !concurrent_matches {
        violations.push("concurrent replay diverged from the serial replay".to_string());
    }

    // Replay 3: serial, cache off, fresh server — byte-identity and the
    // baseline wall-clock/copy cost the cache is measured against.
    let off = Server::new(demo_catalog(quick), purity.clone())
        .with_caching(false)
        .with_cache_budget(budget_bytes);
    let t2 = Instant::now();
    let off_ledger0 = CopyCounter::snapshot();
    let off_outcomes: Vec<ServeOutcome> = sched.iter().map(|q| off.serve_one(q)).collect();
    let off_ledger = CopyCounter::snapshot().since(&off_ledger0);
    let cache_off_s = t2.elapsed().as_secs_f64();
    let cache_off_matches = fingerprints(&outcomes) == fingerprints(&off_outcomes);
    if !cache_off_matches {
        violations.push("cache-off replay diverged from the cache-on replay".to_string());
    }

    // Replay 4: serial, cache on, a budget squeezed to half the measured
    // resident footprint — LRU eviction must fire, residency must stay
    // within the budget, and every response must still be byte-identical
    // (an evicted entry recomputes to the same bits by the certificate).
    let small_budget_bytes = (resident_bytes / 2).max(1);
    let small = Server::new(demo_catalog(quick), purity).with_cache_budget(small_budget_bytes);
    let small_outcomes: Vec<ServeOutcome> = sched.iter().map(|q| small.serve_one(q)).collect();
    let small_stats = small.cache_stats();
    let small_resident_bytes = small.cache_bytes();
    let small_matches = fingerprints(&outcomes) == fingerprints(&small_outcomes);
    if !small_matches {
        violations.push("small-budget replay diverged from the full-budget replay".to_string());
    }
    if small_stats.evictions == 0 {
        violations.push(format!(
            "small-budget replay ({small_budget_bytes} bytes for a {resident_bytes}-byte \
             working set) never evicted"
        ));
    }
    if small_resident_bytes > small_budget_bytes {
        violations.push(format!(
            "small-budget replay resident bytes {small_resident_bytes} exceed the budget \
             {small_budget_bytes}"
        ));
    }

    // Per-distinct-query aggregates from the serial replay.
    let queries = mix
        .iter()
        .enumerate()
        .map(|(i, (q, _))| {
            let idxs: Vec<usize> = which
                .iter()
                .enumerate()
                .filter(|(_, qi)| **qi == i)
                .map(|(r, _)| r)
                .collect();
            let first = idxs.first().map(|&r| &outcomes[r]);
            let mut warm: Vec<f64> = idxs
                .iter()
                .filter(|&&r| classes[r] == Class::Warm)
                .filter_map(|&r| outcomes[r].response().map(|resp| resp.micros))
                .collect();
            warm.sort_by(|a, b| a.total_cmp(b));
            QuerySummary {
                key: q.key(),
                requests: idxs.len(),
                rejected: idxs
                    .iter()
                    .filter(|&&r| classes[r] == Class::Rejected)
                    .count(),
                first_probes: first
                    .and_then(|o| o.response())
                    .map(|r| r.stages.iter().map(|s| probe_name(s.probe)).collect())
                    .unwrap_or_default(),
                cold_us: first.and_then(|o| o.response()).map(|r| r.micros),
                warm_p50_us: (!warm.is_empty()).then(|| percentile(&warm, 0.5)),
            }
        })
        .collect();

    let count = |class: Class| classes.iter().filter(|c| **c == class).count();
    Ok(ServeRun {
        requests: n,
        served: outcomes.iter().filter(|o| !o.is_rejected()).count(),
        rejected: count(Class::Rejected),
        warm: count(Class::Warm),
        cold: count(Class::Cold),
        bypass: count(Class::Bypass),
        stats,
        resident_entries,
        resident_bytes,
        budget_bytes,
        p50_us: percentile(&all_us, 0.5),
        p95_us: percentile(&all_us, 0.95),
        p99_us: percentile(&all_us, 0.99),
        cold_p50_us,
        warm_p50_us,
        warm_speedup,
        serial_s,
        concurrent_s,
        cache_off_s,
        serial_copies: serial_ledger.copies,
        serial_copy_bytes: serial_ledger.bytes,
        warm_copies,
        warm_copy_bytes,
        cache_off_copies: off_ledger.copies,
        cache_off_copy_bytes: off_ledger.bytes,
        concurrent_matches,
        cache_off_matches,
        small_budget_bytes,
        small_stats,
        small_resident_bytes,
        small_matches,
        queries,
        violations,
    })
}

/// Render `BENCH_serve.json` (schema `scibench-bench-serve/v1`).
pub fn results_to_json(run: &ServeRun, host_parallelism: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-serve/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"requests\": {{\"total\": {}, \"served\": {}, \"rejected\": {}, \"warm\": {}, \
         \"cold\": {}, \"bypass\": {}}},\n",
        run.requests, run.served, run.rejected, run.warm, run.cold, run.bypass
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"bypasses\": {}, \"evictions\": {}, \
         \"evicted_bytes\": {}, \"resident_entries\": {}, \"resident_bytes\": {}, \
         \"budget_bytes\": {}}},\n",
        run.stats.hits,
        run.stats.misses,
        run.stats.bypasses,
        run.stats.evictions,
        run.stats.evicted_bytes,
        run.resident_entries,
        run.resident_bytes,
        run.budget_bytes
    ));
    out.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \
         \"cold_p50\": {:.1}, \"warm_p50\": {:.1}, \"warm_speedup\": {:.1}}},\n",
        run.p50_us, run.p95_us, run.p99_us, run.cold_p50_us, run.warm_p50_us, run.warm_speedup
    ));
    out.push_str(&format!(
        "  \"copies\": {{\"serial_replay\": {{\"copies\": {}, \"bytes\": {}}}, \
         \"warm_requests\": {{\"copies\": {}, \"bytes\": {}}}, \
         \"cache_off_replay\": {{\"copies\": {}, \"bytes\": {}}}}},\n",
        run.serial_copies,
        run.serial_copy_bytes,
        run.warm_copies,
        run.warm_copy_bytes,
        run.cache_off_copies,
        run.cache_off_copy_bytes
    ));
    out.push_str(&format!(
        "  \"throughput_rps\": {{\"serial_cache_on\": {:.1}, \"concurrent_cache_on\": {:.1}, \
         \"serial_cache_off\": {:.1}}},\n",
        run.requests as f64 / run.serial_s.max(1e-9),
        run.requests as f64 / run.concurrent_s.max(1e-9),
        run.requests as f64 / run.cache_off_s.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"small_budget\": {{\"budget_bytes\": {}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"evicted_bytes\": {}, \"resident_bytes\": {}, \
         \"matches_full_budget\": {}}},\n",
        run.small_budget_bytes,
        run.small_stats.hits,
        run.small_stats.misses,
        run.small_stats.evictions,
        run.small_stats.evicted_bytes,
        run.small_resident_bytes,
        run.small_matches
    ));
    out.push_str(&format!(
        "  \"comparisons\": {{\"concurrent_matches_serial\": {}, \
         \"cache_off_matches_cache_on\": {}}},\n",
        run.concurrent_matches, run.cache_off_matches
    ));
    out.push_str("  \"queries\": [\n");
    for (i, q) in run.queries.iter().enumerate() {
        let probes: Vec<String> = q.first_probes.iter().map(|p| format!("\"{p}\"")).collect();
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"requests\": {}, \"rejected\": {}, \
             \"first_probes\": [{}], \"cold_us\": {}, \"warm_p50_us\": {}}}{}\n",
            q.key,
            q.requests,
            q.rejected,
            probes.join(", "),
            q.cold_us.map_or("null".to_string(), |v| format!("{v:.1}")),
            q.warm_p50_us
                .map_or("null".to_string(), |v| format!("{v:.1}")),
            if i + 1 < run.queries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_covers_every_query() {
        let (a, wa) = schedule(160);
        let (b, wb) = schedule(160);
        assert_eq!(a, b);
        assert_eq!(wa, wb);
        assert_eq!(a.len(), 160);
        let mix = query_mix();
        for i in 0..mix.len() {
            assert!(wa.contains(&i), "query {i} never scheduled");
        }
        // The prologue is one cold pass over the whole mix, in order.
        assert_eq!(&wa[..mix.len()], &(0..mix.len()).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn percentiles_pick_sane_ranks() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.5), 6.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
