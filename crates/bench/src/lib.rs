//! Library side of the bench crate. The substance lives in the binaries —
//! `reproduce` (regenerate every table/figure), `probe` (calibration) and
//! `scibench` (the `lint` static-verification sweep plus the `bench` /
//! `perf-smoke` kernel harness) — and in `scibench-core`; this library
//! holds the shared kernel-benchmark cases ([`kernels`]), the end-to-end
//! copy-accounting harness ([`e2e`]), the scheduler-skew harness
//! ([`skew`]), the chunk-compression harness ([`compress`]), the
//! out-of-core spill-tier harness ([`ooc`]), the resident-service replay
//! harness ([`serve`]), and lets `cargo bench` targets link against the
//! crate.

pub mod compress;
pub mod e2e;
pub mod hostinfo;
pub mod kernels;
pub mod memo;
pub mod ooc;
pub mod plans;
pub mod serve;
pub mod skew;
