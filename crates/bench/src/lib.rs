//! Library side of the bench crate. The substance lives in the binaries —
//! `reproduce` (regenerate every table/figure), `probe` (calibration) and
//! `scibench` (the `lint` static-verification sweep) — and in
//! `scibench-core`; this library exists so `cargo bench` targets can link
//! against the crate.
