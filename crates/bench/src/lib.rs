pub fn placeholder() {}
