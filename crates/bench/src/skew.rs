//! Skew benchmark: the same per-patch co-add + detection workload under
//! morsel claiming and under static block splits.
//!
//! The workload is a synthetic sky whose source field is deliberately
//! skewed ([`SkySurvey::generate_skewed`]: 80% of the sources packed into
//! one corner patch — the paper's §5.3.3 "a few patches dominate a
//! straggler" scenario). Each patch is one work item: co-add + detection
//! (per-pixel, near-uniform) plus per-source forced photometry (what makes
//! the dense patch cost several times the others), so a static contiguous
//! split pins the hot patch plus its block-mates on one worker while
//! morsel claiming gives that worker nothing else.
//!
//! Two imbalance numbers are reported per (workers, schedule) cell:
//!
//! * **model** — [`simulate_workers`] over the serially measured
//!   per-morsel costs. Deterministic given the costs, and meaningful even
//!   on a single-core host where real threads never overlap.
//! * **measured** — the live [`PoolStats`] busy-time imbalance of the
//!   actual threaded run. Honest but noisy; on a one-core host a single
//!   worker can drain the whole cursor before the others are scheduled.
//!
//! Results serialize as `BENCH_skew.json` (schema `scibench-bench-skew/v1`).

use crate::kernels::Fingerprint;
use parexec::{imbalance_ratio, simulate_workers, MorselPool, Parallelism, PoolStats, Schedule};
use scibench_core::costmodel::KernelScaling;
use sciops::astro::pipeline::{create_patches, merge_visit_pieces};
use sciops::astro::{
    calibrate_exposure, coadd_sigma_clip, detect_sources, CalibParams, CoaddParams, DetectParams,
    Exposure, PatchId,
};
use sciops::synth::sky::{SkySpec, SkySurvey};
use std::time::Instant;

/// Worker counts the skew matrix sweeps (serial is the cost-measurement
/// anchor, not a row: imbalance is undefined for one worker).
pub const SKEW_LADDER: [usize; 3] = [2, 4, 8];

/// Survey geometry for the skew run. Both variants pack enough sources
/// into the dense corner patch that its forced-photometry bill dominates:
/// `quick` is a 9-patch smoke field, the full run a 16-patch field whose
/// hot patch sits among 15 cheap ones.
fn skew_spec(quick: bool) -> SkySpec {
    if quick {
        SkySpec {
            sensor_width: 48,
            sensor_height: 48,
            sensor_grid: (2, 2),
            n_visits: 4,
            n_sources: 40,
            background: 200.0,
            bg_gradient: 0.05,
            flux_range: (3000.0, 9000.0),
            psf_sigma: 1.2,
            read_noise: 8.0,
            cosmic_rays_per_sensor: 2,
            dither: 2,
            patch_size: 36,
        }
    } else {
        SkySpec {
            sensor_width: 64,
            sensor_height: 64,
            sensor_grid: (3, 3),
            n_visits: 8,
            n_sources: 110,
            background: 200.0,
            bg_gradient: 0.02,
            flux_range: (3000.0, 9000.0),
            psf_sigma: 1.2,
            read_noise: 8.0,
            cosmic_rays_per_sensor: 3,
            dither: 3,
            patch_size: 48,
        }
    }
}

/// One (schedule) cell of a skew matrix row.
#[derive(Debug, Clone)]
pub struct SkewCell {
    /// Imbalance of the deterministic worker model over measured costs.
    pub model_imbalance: f64,
    /// Imbalance of the live run's per-worker busy times.
    pub measured_imbalance: f64,
    /// Morsels executed off their static-block owner (0 under Static).
    pub steals: usize,
    /// Morsels claimed per worker in the live run.
    pub per_worker_morsels: Vec<usize>,
    /// Wall milliseconds of the live run.
    pub ms: f64,
}

/// One worker-count row: morsel claiming vs the static split.
#[derive(Debug, Clone)]
pub struct SkewResult {
    /// Worker count.
    pub workers: usize,
    /// Dynamic morsel claiming.
    pub morsel: SkewCell,
    /// Static contiguous block split.
    pub static_split: SkewCell,
    /// Both schedules' outputs matched the serial run bit for bit.
    pub outputs_identical: bool,
}

/// A full skew run: the matrix plus the serially measured cost profile.
#[derive(Debug, Clone)]
pub struct SkewRun {
    /// Work items (patches with data).
    pub patches: usize,
    /// Model work units: one morsel per patch (the live pools may coarsen
    /// their own partitions; the model is the headline on this host).
    pub morsels: usize,
    /// Per-morsel (= per-patch) serial costs in nanoseconds.
    pub morsel_cost_nanos: Vec<f64>,
    /// One row per [`SKEW_LADDER`] entry.
    pub results: Vec<SkewResult>,
    /// Intra-node scaling curve the cost model predicts from the measured
    /// morsel costs ([`KernelScaling::from_morsel_costs`]).
    pub predicted_scaling: Vec<(usize, f64)>,
}

/// Calibrate, patch and merge the survey into per-patch visit stacks —
/// the items the scheduler fans out over.
fn patch_items(survey: &SkySurvey) -> Vec<(PatchId, Vec<Exposure>)> {
    let calib = CalibParams::default();
    let grid = survey.patch_grid();
    let calibrated: Vec<Exposure> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| calibrate_exposure(e, &calib))
        .collect();
    create_patches(&calibrated, &grid)
        .into_iter()
        .map(|(patch, pieces)| {
            let patch_box = grid.patch_box(patch);
            let mut by_visit: std::collections::BTreeMap<u32, Vec<Exposure>> =
                std::collections::BTreeMap::new();
            for piece in pieces {
                by_visit.entry(piece.visit).or_default().push(piece);
            }
            let stacks: Vec<Exposure> = by_visit
                .into_values()
                .map(|pieces| merge_visit_pieces(&patch_box, &pieces))
                .collect();
            (patch, stacks)
        })
        .collect()
}

/// Co-add, detect, then force-photometer every detected source on every
/// visit stack, folded to a fingerprint.
///
/// Co-add and detection cost is per-pixel and thus near-uniform across
/// patches; the forced photometry (light-curve extraction, one stamp per
/// source per visit) is what makes a source-dense patch genuinely more
/// expensive — the cost skew this benchmark demonstrates.
fn patch_work(patch: &PatchId, stacks: &[Exposure]) -> u64 {
    let coadd = coadd_sigma_clip(stacks, &CoaddParams::default());
    let sources = detect_sources(&coadd, &DetectParams::default());
    let mut fp = Fingerprint::new();
    fp.push_usize(patch.0 as usize);
    fp.push_usize(patch.1 as usize);
    fp.push_slice(coadd.flux.data());
    fp.push_usize(sources.len());
    for s in &sources {
        fp.push_f64(s.centroid.0);
        fp.push_f64(s.centroid.1);
        fp.push_f64(s.flux);
        fp.push_f64(s.peak);
        fp.push_usize(s.npix);
        for e in stacks {
            fp.push_f64(forced_flux(e, s.centroid));
        }
    }
    fp.finish()
}

/// PSF-weighted forced photometry of one source position on one visit
/// stack: Gaussian-weighted mean flux over a fixed stamp around the
/// centroid (the per-epoch flux a light curve is built from).
fn forced_flux(e: &Exposure, centroid: (f64, f64)) -> f64 {
    /// Stamp half-width in pixels; covers the PSF out to ~6 sigma.
    const RADIUS: i64 = 7;
    /// `2 * psf_sigma^2` for the generator's 1.2-pixel PSF.
    const TWO_SIGMA_SQ: f64 = 2.0 * 1.2 * 1.2;
    let (rows, cols) = e.dims();
    let cx = centroid.0 - e.bbox.x0 as f64;
    let cy = centroid.1 - e.bbox.y0 as f64;
    let (ix, iy) = (cx.round() as i64, cy.round() as i64);
    let mut num = 0.0;
    let mut den = 0.0;
    for dy in -RADIUS..=RADIUS {
        for dx in -RADIUS..=RADIUS {
            let (x, y) = (ix + dx, iy + dy);
            if x < 0 || y < 0 || x >= cols as i64 || y >= rows as i64 {
                continue;
            }
            let fx = cx - x as f64;
            let fy = cy - y as f64;
            let w = (-(fx * fx + fy * fy) / TWO_SIGMA_SQ).exp();
            num += w * e.flux.data()[y as usize * cols + x as usize];
            den += w;
        }
    }
    num / den.max(1e-12)
}

fn run_cell(
    items: &[(PatchId, Vec<Exposure>)],
    workers: usize,
    schedule: Schedule,
    costs: &[f64],
) -> (Vec<u64>, SkewCell) {
    let pool = MorselPool::new(Parallelism::threads(workers)).with_schedule(schedule);
    let t0 = Instant::now();
    let (out, stats): (Vec<u64>, PoolStats) =
        pool.map_with_stats(items, |_, (patch, stacks)| patch_work(patch, stacks));
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let model = simulate_workers(costs, workers, schedule);
    let cell = SkewCell {
        model_imbalance: imbalance_ratio(&model),
        measured_imbalance: stats.imbalance(),
        steals: stats.steals,
        per_worker_morsels: stats.per_worker_morsels.clone(),
        ms,
    };
    (out, cell)
}

/// Run the skew matrix: serial cost measurement, then every
/// [`SKEW_LADDER`] worker count under both schedules, asserting outputs
/// stay bit-identical to the serial run.
pub fn run_skew(quick: bool) -> SkewRun {
    let survey = SkySurvey::generate_skewed(42, &skew_spec(quick));
    let items = patch_items(&survey);

    // Serial anchor: the reference output and the per-patch cost profile
    // every model comparison uses. Timed item by item rather than through
    // a width-1 pool — the pool would coarsen a handful of patches into
    // fewer morsels, and the model wants exactly one cost per patch.
    let mut reference = Vec::with_capacity(items.len());
    let mut costs = Vec::with_capacity(items.len());
    for (patch, stacks) in &items {
        let t0 = Instant::now();
        reference.push(patch_work(patch, stacks));
        costs.push(t0.elapsed().as_secs_f64() * 1e9);
    }

    let mut results = Vec::new();
    for &workers in &SKEW_LADDER {
        let (out_m, morsel) = run_cell(&items, workers, Schedule::Morsel, &costs);
        let (out_s, static_split) = run_cell(&items, workers, Schedule::Static, &costs);
        results.push(SkewResult {
            workers,
            morsel,
            static_split,
            outputs_identical: out_m == reference && out_s == reference,
        });
    }

    let predicted = KernelScaling::from_morsel_costs(&costs, &[2, 4, 8]);
    SkewRun {
        patches: items.len(),
        morsels: costs.len(),
        morsel_cost_nanos: costs,
        results,
        predicted_scaling: predicted.points,
    }
}

fn cell_json(c: &SkewCell) -> String {
    let morsels = c
        .per_worker_morsels
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"model_imbalance\": {:.4}, \"measured_imbalance\": {:.4}, \"steals\": {}, \
         \"per_worker_morsels\": [{morsels}], \"ms\": {:.2}}}",
        c.model_imbalance, c.measured_imbalance, c.steals, c.ms
    )
}

/// Render a skew run as the `BENCH_skew.json` document
/// (schema `scibench-bench-skew/v1`). Hand-rolled like the other bench
/// emitters: no JSON dependency in the workspace.
pub fn results_to_json(run: &SkewRun, host_parallelism: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-skew/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"patches\": {},\n", run.patches));
    out.push_str(&format!("  \"morsels\": {},\n", run.morsels));
    out.push_str("  \"results\": [\n");
    for (i, r) in run.results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"morsel\": {}, \"static\": {}, \
             \"outputs_identical\": {}}}{}\n",
            r.workers,
            cell_json(&r.morsel),
            cell_json(&r.static_split),
            r.outputs_identical,
            if i + 1 < run.results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The summary block is what plancheck's skew-awareness pass reads:
    // the static imbalance at the widest sweep point is the skew a
    // non-morsel engine would see on this workload.
    if let Some(last) = run.results.last() {
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"workers\": {},\n", last.workers));
        out.push_str(&format!(
            "    \"model_imbalance_morsel\": {:.4},\n",
            last.morsel.model_imbalance
        ));
        out.push_str(&format!(
            "    \"model_imbalance_static\": {:.4}\n",
            last.static_split.model_imbalance
        ));
        out.push_str("  },\n");
    }
    out.push_str("  \"predicted_scaling\": [\n");
    for (i, (t, s)) in run.predicted_scaling.iter().enumerate() {
        out.push_str(&format!(
            "    [{t}, {s:.4}]{}\n",
            if i + 1 < run.predicted_scaling.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic per-patch cost proxy: how many injected sources land
    /// in each patch (detection cost tracks source density). Independent
    /// of any timing, so the regression assertion below is strict.
    fn source_count_costs(survey: &SkySurvey) -> Vec<f64> {
        let grid = survey.patch_grid();
        let items = patch_items(survey);
        items
            .iter()
            .map(|(patch, _)| {
                let b = grid.patch_box(*patch);
                let n = survey
                    .sources
                    .iter()
                    .filter(|s| {
                        s.x >= b.x0 as f64
                            && s.x < b.x1() as f64
                            && s.y >= b.y0 as f64
                            && s.y < b.y1() as f64
                    })
                    .count();
                // Every patch pays a base co-add cost; detection adds
                // per-source work on top.
                1.0 + n as f64
            })
            .collect()
    }

    #[test]
    fn morsel_schedule_beats_static_split_on_skewed_field() {
        // Full-scale field: with 16 patches every static block at 8 workers
        // still co-locates a block-mate with the hot patch, so strictness
        // holds at every ladder width. (At quick scale, 9 patches over 8
        // workers leave the hot patch alone in its block and the schedules
        // tie.) Cheap despite the scale: this only counts sources, it never
        // runs the co-add/detect kernel.
        let survey = SkySurvey::generate_skewed(42, &skew_spec(false));
        let costs = source_count_costs(&survey);
        assert!(
            costs.len() >= 4,
            "need several patches, got {}",
            costs.len()
        );
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        let sum: f64 = costs.iter().sum();
        assert!(
            max / sum > 3.0 / costs.len() as f64,
            "field not skewed: hottest patch carries {max} of {sum} over {} patches",
            costs.len()
        );
        for workers in [2usize, 4, 8] {
            let dynamic = imbalance_ratio(&simulate_workers(&costs, workers, Schedule::Morsel));
            let fixed = imbalance_ratio(&simulate_workers(&costs, workers, Schedule::Static));
            assert!(
                dynamic < fixed,
                "workers={workers}: morsel imbalance {dynamic:.3} not strictly below \
                 static {fixed:.3}"
            );
        }
    }

    #[test]
    fn quick_run_is_bit_identical_across_schedules() {
        // Bit-identity and structure only: the quick field is deliberately
        // small, and with nine chunky morsels the measured scheduling gap
        // between morsel claiming and a static split is inside timing
        // noise. The scheduling *win* is asserted deterministically by
        // `morsel_schedule_beats_static_split_on_skewed_field` and enforced
        // on the full run that generates the committed BENCH_skew.json.
        let run = run_skew(true);
        assert_eq!(run.patches, run.morsels, "one model morsel per patch");
        assert!(!run.results.is_empty());
        for r in &run.results {
            assert!(r.outputs_identical, "workers={}", r.workers);
            assert!(r.morsel.model_imbalance >= 1.0);
            assert!(r.static_split.model_imbalance >= 1.0);
        }
        assert_eq!(run.predicted_scaling.first(), Some(&(1, 1.0)));
    }

    #[test]
    fn json_schema_and_fields_are_stable() {
        let run = SkewRun {
            patches: 9,
            morsels: 9,
            morsel_cost_nanos: vec![100.0; 9],
            results: vec![SkewResult {
                workers: 4,
                morsel: SkewCell {
                    model_imbalance: 1.05,
                    measured_imbalance: 2.0,
                    steals: 3,
                    per_worker_morsels: vec![3, 2, 2, 2],
                    ms: 1.5,
                },
                static_split: SkewCell {
                    model_imbalance: 2.4,
                    measured_imbalance: 2.5,
                    steals: 0,
                    per_worker_morsels: vec![2, 2, 2, 3],
                    ms: 2.0,
                },
                outputs_identical: true,
            }],
            predicted_scaling: vec![(1, 1.0), (4, 3.2)],
        };
        let json = results_to_json(&run, 1, true);
        assert!(json.contains("\"schema\": \"scibench-bench-skew/v1\""));
        assert!(json.contains("\"single_core_host\": true"));
        assert!(json.contains("\"model_imbalance\": 1.0500"));
        assert!(json.contains("\"model_imbalance_static\": 2.4000"));
        assert!(json.contains("\"per_worker_morsels\": [3, 2, 2, 2]"));
        assert!(json.contains("\"predicted_scaling\""));
        assert!(json.contains("[4, 3.2000]"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
