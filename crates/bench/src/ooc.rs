//! The `scibench bench ooc` harness: out-of-core execution under the
//! memory governor ([`marray::MemoryGovernor`]).
//!
//! Two sections, both over data deliberately larger than the budget:
//!
//! 1. **Streaming scan** — a stack of dense, incompressible noise planes
//!    is ingested chunk-by-chunk (chunk granularity derived from the
//!    budget via [`scibench_core::costmodel::choose_chunk_shape`]) and
//!    reduced in two passes (forward sums, reverse sums of squares), with
//!    the pin released after every chunk. The same scan runs under three
//!    budgets — 25 % of the dataset, 50 %, and unbounded — and the gates
//!    are the tentpole claims: the three output fingerprints are
//!    bit-identical (spill/reload is bit-exact), every bounded row
//!    actually spilled *and* reloaded, and governor-measured peak
//!    residency never exceeded the budget. The 25 % row's measured peak
//!    is then compared against [`plancheck::estimated_peak_demand`] over
//!    a task graph modeling the same chunked scan; the two must agree
//!    within [`DEMAND_FACTOR`].
//! 2. **Engine analogs** — every runnable pipeline/engine combination
//!    from the e2e suite executes once unbounded and once under a budget
//!    far below its dataset ([`ENGINE_BUDGET`]), asserting fingerprint
//!    equality per engine. Peak residency is *not* gated here: kernels
//!    legitimately pin whole working sets (that overshoot is recorded,
//!    not hidden), but the spill traffic shows every engine analog really
//!    executing through the governor. Configurations the paper reports
//!    as statically refused for memory (Figure 15) are exercised at the
//!    service layer instead — see the sciserve admission tests.
//!
//! Results serialize as `BENCH_ooc.json` (schema `scibench-bench-ooc/v1`).

use crate::kernels::Fingerprint;
use marray::{with_mem_budget, GovStats, MemoryGovernor, NdArray};
use scibench_core::costmodel::choose_chunk_shape;
use simcluster::{ClusterSpec, TaskGraph, TaskSpec};
use std::time::Instant;

/// Accepted spread between the plancheck antichain-demand estimate and
/// the governor-measured peak residency of the tightest streaming row.
/// The estimate is a *minimal working set* (what the plan needs live at
/// once); the governor's LRU keeps every byte the budget allows resident,
/// so the measured peak legitimately sits above the estimate — up to the
/// budget-over-chunk ratio (`4 × CHUNK_BUDGET_SLACK = 16` at the 25 %
/// budget) — and never below it by more than transient double-residency.
pub const DEMAND_FACTOR: f64 = 16.0;

/// Memory budget for the engine-analog section: far below every
/// dataset's ingest footprint, so all five analogs execute out-of-core.
pub const ENGINE_BUDGET: u64 = 64 << 10;

/// One streaming scan under one budget.
#[derive(Debug, Clone)]
pub struct ChunkRow {
    /// Budget label: `"25%"`, `"50%"` or `"unbounded"`.
    pub label: &'static str,
    /// Budget in bytes (0 = unbounded).
    pub budget_bytes: u64,
    /// Planes per chunk, from the budget-derived granularity formula.
    pub chunk_rows: usize,
    /// Bytes per full chunk.
    pub chunk_bytes: u64,
    /// Output fingerprint (must match across every row).
    pub fingerprint: u64,
    /// Governor ledger delta over this row.
    pub gov: GovStats,
    /// Wall milliseconds.
    pub ms: f64,
}

/// One engine analog run unbounded and under [`ENGINE_BUDGET`].
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Use case: `"neuro"` or `"astro"`.
    pub pipeline: &'static str,
    /// Engine analog.
    pub engine: &'static str,
    /// Governor ledger delta over the budgeted run.
    pub gov: GovStats,
    /// Unbounded and budgeted fingerprints matched bit for bit.
    pub outputs_identical: bool,
    /// Wall milliseconds unbounded.
    pub ms_unbounded: f64,
    /// Wall milliseconds under the budget.
    pub ms_budget: f64,
}

/// Everything `scibench bench ooc` reports and gates on.
pub struct OocRun {
    /// Streaming dataset footprint in bytes.
    pub dataset_bytes: u64,
    /// Streaming rows, tightest budget first, unbounded last.
    pub rows: Vec<ChunkRow>,
    /// Plancheck's antichain-demand estimate for the chunked scan.
    pub estimated_demand_bytes: u64,
    /// Governor-measured peak residency of the tightest bounded row.
    pub measured_peak_bytes: u64,
    /// `measured_peak_bytes / estimated_demand_bytes`.
    pub demand_ratio: f64,
    /// Engine-analog rows.
    pub engines: Vec<EngineRow>,
    /// Acceptance failures (empty on a green run).
    pub violations: Vec<String>,
}

/// Streaming geometry: `(planes, rows, cols)` of f64 noise.
fn geometry(quick: bool) -> (usize, usize, usize) {
    if quick {
        (24, 96, 96)
    } else {
        (48, 160, 160)
    }
}

/// Deterministic incompressible noise in `[0, 1)`, addressed by global
/// plane/row/col so the values — and therefore the fingerprints — cannot
/// depend on how a budget happened to chunk the stack (SplitMix64).
fn noise(plane: usize, row: usize, col: usize) -> f64 {
    let mut z = ((plane as u64) << 40) ^ ((row as u64) << 20) ^ col as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One streaming scan: ingest governed chunks, then a forward pass of
/// per-plane sums and a reverse pass of per-plane sums of squares, the
/// pin released after every chunk so the working set — not the traversal
/// history — is what counts against the budget. Returns
/// `(fingerprint, chunk_rows)`.
fn streaming_scan(n: usize, h: usize, w: usize, budget: Option<u64>) -> (u64, usize) {
    let chunk_rows = choose_chunk_shape(&[n, h, w], 8, 1, budget)[0];
    let mut chunks: Vec<NdArray<f64>> = Vec::new();
    let mut base = 0;
    while base < n {
        let rows = chunk_rows.min(n - base);
        let raw = NdArray::from_fn(&[rows, h, w], |ix| noise(base + ix[0], ix[1], ix[2]));
        chunks.push(raw.govern());
        base += rows;
    }
    MemoryGovernor::enforce();

    let mut sums = vec![0.0f64; n];
    let mut base = 0;
    for chunk in &mut chunks {
        for (p, plane) in chunk.slabs().enumerate() {
            sums[base + p] = plane.iter().sum();
        }
        base += chunk.dims()[0];
        chunk.release();
    }
    let mut sumsqs = vec![0.0f64; n];
    let mut top = n;
    for chunk in chunks.iter_mut().rev() {
        top -= chunk.dims()[0];
        for (p, plane) in chunk.slabs().enumerate() {
            sumsqs[top + p] = plane.iter().map(|v| v * v).sum();
        }
        chunk.release();
    }
    MemoryGovernor::enforce();

    let mut fp = Fingerprint::new();
    fp.push_slice(&sums);
    fp.push_slice(&sumsqs);
    (fp.finish(), chunk_rows)
}

/// The task graph modeling the chunked scan for plancheck: a sequential
/// chain of per-chunk scan tasks, each holding one chunk resident
/// (`mem`) and handing it downstream (`output`). The chain is totally
/// ordered, so the antichain-demand estimate is a single chunk — the
/// *minimal* working set, which the LRU governor legitimately exceeds by
/// keeping every byte the budget allows resident (see [`DEMAND_FACTOR`]).
fn scan_graph(chunks: usize, chunk_bytes: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut prev = None;
    for _ in 0..chunks {
        let mut spec = TaskSpec::compute("ooc:scan", 1.0)
            .mem(chunk_bytes)
            .output(chunk_bytes);
        if let Some(p) = prev {
            spec = spec.after(&[p]);
        }
        prev = Some(g.add(spec));
    }
    g
}

/// Run the full out-of-core suite.
pub fn run_ooc(quick: bool) -> OocRun {
    let (n, h, w) = geometry(quick);
    let dataset_bytes = (n * h * w * 8) as u64;
    let mut violations = Vec::new();

    // Section 1: the streaming scan under three budgets.
    let budgets: [(&'static str, Option<u64>); 3] = [
        ("25%", Some(dataset_bytes / 4)),
        ("50%", Some(dataset_bytes / 2)),
        ("unbounded", None),
    ];
    let mut rows = Vec::new();
    for (label, budget) in budgets {
        let row = with_mem_budget(budget, || {
            let before = MemoryGovernor::snapshot();
            MemoryGovernor::reset_peak();
            let t = Instant::now();
            let (fingerprint, chunk_rows) = streaming_scan(n, h, w, budget);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            ChunkRow {
                label,
                budget_bytes: budget.unwrap_or(0),
                chunk_rows,
                chunk_bytes: (chunk_rows * h * w * 8) as u64,
                fingerprint,
                gov: MemoryGovernor::snapshot().since(&before),
                ms,
            }
        });
        rows.push(row);
    }
    for pair in rows.windows(2) {
        if pair[0].fingerprint != pair[1].fingerprint {
            violations.push(format!(
                "fingerprint diverged between the {} and {} budgets",
                pair[0].label, pair[1].label
            ));
        }
    }
    for r in &rows {
        if r.budget_bytes == 0 {
            if r.gov.spills != 0 {
                violations.push(format!("unbounded row spilled {} cell(s)", r.gov.spills));
            }
            continue;
        }
        if r.gov.spills == 0 || r.gov.reloads == 0 {
            violations.push(format!(
                "{} row did not exercise the spill tier (spills {}, reloads {})",
                r.label, r.gov.spills, r.gov.reloads
            ));
        }
        if r.gov.peak_resident > r.budget_bytes {
            violations.push(format!(
                "{} row peak residency {} exceeded the budget {}",
                r.label, r.gov.peak_resident, r.budget_bytes
            ));
        }
    }

    // Plancheck's estimate for the same chunked scan, against the
    // tightest row's measured peak.
    let tight = &rows[0];
    let n_chunks = n.div_ceil(tight.chunk_rows.max(1));
    let cluster = ClusterSpec::r3_2xlarge(1);
    let estimated_demand_bytes =
        plancheck::estimated_peak_demand(&scan_graph(n_chunks, tight.chunk_bytes), &cluster);
    let measured_peak_bytes = tight.gov.peak_resident;
    let demand_ratio = measured_peak_bytes as f64 / estimated_demand_bytes.max(1) as f64;
    if estimated_demand_bytes == 0 {
        violations.push("plancheck produced no demand estimate for the scan graph".into());
    } else if !(1.0 / DEMAND_FACTOR..=DEMAND_FACTOR).contains(&demand_ratio) {
        violations.push(format!(
            "measured peak {measured_peak_bytes} vs plancheck estimate \
             {estimated_demand_bytes} (ratio {demand_ratio:.2}) outside the \
             {DEMAND_FACTOR}x bound"
        ));
    }

    // Section 2: every runnable engine analog, unbounded vs budgeted.
    let (cases, _skipped) = crate::e2e::suite(quick);
    let mut engines = Vec::new();
    for case in &cases {
        let t = Instant::now();
        let fp_unbounded = with_mem_budget(None, || case.run());
        let ms_unbounded = t.elapsed().as_secs_f64() * 1e3;
        let (fp_budget, gov, ms_budget) = with_mem_budget(Some(ENGINE_BUDGET), || {
            let before = MemoryGovernor::snapshot();
            MemoryGovernor::reset_peak();
            let t = Instant::now();
            let fp = case.run();
            let ms = t.elapsed().as_secs_f64() * 1e3;
            MemoryGovernor::enforce();
            (fp, MemoryGovernor::snapshot().since(&before), ms)
        });
        let outputs_identical = fp_unbounded == fp_budget;
        if !outputs_identical {
            violations.push(format!(
                "{}/{} diverged between unbounded and budgeted runs",
                case.pipeline, case.engine
            ));
        }
        engines.push(EngineRow {
            pipeline: case.pipeline,
            engine: case.engine,
            gov,
            outputs_identical,
            ms_unbounded,
            ms_budget,
        });
    }
    if engines.iter().all(|e| e.gov.spills == 0) {
        violations.push("no engine analog spilled under the engine budget".into());
    }

    OocRun {
        dataset_bytes,
        rows,
        estimated_demand_bytes,
        measured_peak_bytes,
        demand_ratio,
        engines,
        violations,
    }
}

/// Render `BENCH_ooc.json` (schema `scibench-bench-ooc/v1`). Hand-rolled
/// like the other bench writers: no JSON dependency in the workspace.
pub fn results_to_json(run: &OocRun, host_parallelism: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-ooc/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"dataset_bytes\": {},\n", run.dataset_bytes));
    out.push_str("  \"budget_rows\": [\n");
    for (i, r) in run.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"budget\": \"{}\", \"budget_bytes\": {}, \"chunk_rows\": {}, \
             \"chunk_bytes\": {}, \"fingerprint\": \"{:016x}\", \"spills\": {}, \
             \"reloads\": {}, \"spilled_bytes\": {}, \"reloaded_bytes\": {}, \
             \"peak_resident\": {}, \"ms\": {:.2}}}{}\n",
            r.label,
            r.budget_bytes,
            r.chunk_rows,
            r.chunk_bytes,
            r.fingerprint,
            r.gov.spills,
            r.gov.reloads,
            r.gov.spilled_bytes,
            r.gov.reloaded_bytes,
            r.gov.peak_resident,
            r.ms,
            if i + 1 < run.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"plancheck\": {{\"estimated_demand_bytes\": {}, \"measured_peak_bytes\": {}, \
         \"ratio\": {:.2}, \"factor_bound\": {:.1}}},\n",
        run.estimated_demand_bytes, run.measured_peak_bytes, run.demand_ratio, DEMAND_FACTOR
    ));
    out.push_str(&format!("  \"engine_budget_bytes\": {ENGINE_BUDGET},\n"));
    out.push_str("  \"engines\": [\n");
    for (i, e) in run.engines.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pipeline\": \"{}\", \"engine\": \"{}\", \"spills\": {}, \"reloads\": {}, \
             \"spilled_bytes\": {}, \"peak_resident\": {}, \"outputs_identical\": {}, \
             \"ms_unbounded\": {:.2}, \"ms_budget\": {:.2}}}{}\n",
            e.pipeline,
            e.engine,
            e.gov.spills,
            e.gov.reloads,
            e.gov.spilled_bytes,
            e.gov.peak_resident,
            e.outputs_identical,
            e.ms_unbounded,
            e.ms_budget,
            if i + 1 < run.engines.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_scan_is_budget_invariant_and_respects_the_budget() {
        let (n, h, w) = (12, 32, 32);
        let total = (n * h * w * 8) as u64;
        let unbounded = with_mem_budget(None, || streaming_scan(n, h, w, None));
        let bounded = with_mem_budget(Some(total / 4), || {
            let before = MemoryGovernor::snapshot();
            MemoryGovernor::reset_peak();
            let out = streaming_scan(n, h, w, Some(total / 4));
            (out, MemoryGovernor::snapshot().since(&before))
        });
        let ((fp, chunk_rows), gov) = bounded;
        assert_eq!(fp, unbounded.0, "spill/reload must be bit-exact");
        assert!(chunk_rows < n, "a 25% budget must split the stack");
        assert!(gov.spills > 0 && gov.reloads > 0);
        assert!(gov.peak_resident <= total / 4);
    }

    #[test]
    fn scan_graph_demand_is_positive_and_chunk_scaled() {
        let demand =
            plancheck::estimated_peak_demand(&scan_graph(16, 1 << 20), &ClusterSpec::r3_2xlarge(1));
        assert!(demand >= 1 << 20, "at least one chunk is always live");
        assert!(
            demand < 16 << 20,
            "a sequential chain never needs the whole stack"
        );
    }

    #[test]
    fn json_schema_and_fields_are_stable() {
        let run = OocRun {
            dataset_bytes: 1 << 20,
            rows: vec![ChunkRow {
                label: "25%",
                budget_bytes: 1 << 18,
                chunk_rows: 1,
                chunk_bytes: 1 << 16,
                fingerprint: 0xabcd,
                gov: GovStats::default(),
                ms: 1.0,
            }],
            estimated_demand_bytes: 1 << 17,
            measured_peak_bytes: 1 << 18,
            demand_ratio: 2.0,
            engines: vec![EngineRow {
                pipeline: "neuro",
                engine: "spark",
                gov: GovStats::default(),
                outputs_identical: true,
                ms_unbounded: 2.0,
                ms_budget: 3.0,
            }],
            violations: Vec::new(),
        };
        let json = results_to_json(&run, 1, true);
        assert!(json.contains("\"schema\": \"scibench-bench-ooc/v1\""));
        assert!(json.contains("\"single_core_host\": true"));
        assert!(json.contains("\"fingerprint\": \"000000000000abcd\""));
        assert!(json.contains("\"factor_bound\": 16.0"));
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
