//! Runnable kernel cases shared by `scibench bench` and
//! `scibench perf-smoke`: the five hottest sciops kernels, each wrapped as
//! a closure over pre-built synthetic inputs that runs at a given
//! [`Parallelism`] and returns a fingerprint of its full output.
//!
//! The fingerprint (FNV-1a over every output bit pattern) is how the CLI
//! asserts the determinism contract end to end: serial and N-thread runs
//! of the same case must produce the same fingerprint because the kernels
//! guarantee bit-identical outputs at every worker count.

use sciops::astro::coadd::Coadd;
use sciops::astro::pipeline::{create_patches, merge_visit_pieces};
use sciops::astro::{
    calibrate_exposure, coadd_sigma_clip_par, detect_sources_par, estimate_background_par,
    CalibParams, CoaddParams, DetectParams,
};
use sciops::neuro::pipeline::segmentation;
use sciops::neuro::{fit_dtm_volume_full_par, nlmeans3d_par, NlmParams};
use sciops::synth::dmri::{DmriPhantom, DmriSpec};
use sciops::synth::sky::{SkySpec, SkySurvey};
use sciops::Parallelism;
use std::time::Instant;

/// FNV-1a accumulator for output fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Start a fresh fingerprint.
    pub fn new() -> Fingerprint {
        Fingerprint(0xcbf29ce484222325)
    }
    fn push_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    /// Fold one float's exact bit pattern in.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }
    /// Fold an integer in.
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }
    /// Fold a whole float slice in.
    pub fn push_slice(&mut self, vs: &[f64]) {
        for &v in vs {
            self.push_f64(v);
        }
    }
    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// One benchmarkable kernel: a name, its input shape, and a runner that
/// executes at a given parallelism and fingerprints the full output.
pub struct KernelCase {
    /// Kernel identifier (stable across releases; used in JSON output).
    pub name: &'static str,
    /// Human-readable input shape, e.g. `"12x12x10"`.
    pub shape: String,
    runner: Box<dyn Fn(Parallelism) -> u64>,
}

impl KernelCase {
    /// Build a case from its parts (used by [`crate::compress`] to add the
    /// compressed-vs-dense rows to the bench matrix).
    pub(crate) fn new(
        name: &'static str,
        shape: String,
        runner: Box<dyn Fn(Parallelism) -> u64>,
    ) -> KernelCase {
        KernelCase {
            name,
            shape,
            runner,
        }
    }

    /// Run the kernel once; returns the output fingerprint.
    pub fn run(&self, par: Parallelism) -> u64 {
        (self.runner)(par)
    }

    /// Wall-clock nanoseconds per run at `par`: one warm-up run, then the
    /// best of `reps` timed runs (min shaves scheduler noise).
    pub fn time_ns(&self, par: Parallelism, reps: usize) -> u64 {
        let _ = self.run(par);
        let mut best = u64::MAX;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let _ = self.run(par);
            best = best.min(t.elapsed().as_nanos() as u64);
        }
        best.max(1)
    }
}

fn coadd_inputs() -> Vec<sciops::astro::Exposure> {
    let survey = SkySurvey::generate(101, &SkySpec::test_scale());
    let grid = survey.patch_grid();
    let calib = CalibParams::default();
    let calibrated: Vec<_> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| calibrate_exposure(e, &calib))
        .collect();
    let by_patch = create_patches(&calibrated, &grid);
    // The busiest patch gives the deepest stack.
    let (patch, pieces) = by_patch
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("survey covers >= 1 patch");
    let patch_box = grid.patch_box(*patch);
    let mut by_visit: std::collections::BTreeMap<u32, Vec<_>> = std::collections::BTreeMap::new();
    for piece in pieces {
        by_visit.entry(piece.visit).or_default().push(piece.clone());
    }
    by_visit
        .into_values()
        .map(|pieces| merge_visit_pieces(&patch_box, &pieces))
        .collect()
}

fn fingerprint_coadd(c: &Coadd) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_slice(c.flux.data());
    fp.push_slice(c.variance.data());
    for &d in c.depth.data() {
        fp.push_usize(d as usize);
    }
    fp.finish()
}

/// The five hottest kernels of the two pipelines, on small synthetic
/// inputs (~seconds for the whole suite even single-threaded).
pub fn suite() -> Vec<KernelCase> {
    let mut cases = Vec::new();

    // Neuroscience inputs: one small phantom shared by both kernels.
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(42, &spec);
    let data: marray::NdArray<f64> = phantom.data.cast();
    let (_, mask) = segmentation(&data, &phantom.gtab);
    let dmri_shape = format!(
        "{}x{}x{}x{}",
        spec.dims[0], spec.dims[1], spec.dims[2], spec.n_volumes
    );

    {
        let vol = data.slice_axis(3, 0).expect("volume 0");
        let mask = mask.clone();
        let nlm = NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };
        cases.push(KernelCase {
            name: "nlm_denoise",
            shape: format!("{}x{}x{}", spec.dims[0], spec.dims[1], spec.dims[2]),
            runner: Box::new(move |par| {
                let out = nlmeans3d_par(&vol, Some(&mask), &nlm, par);
                let mut fp = Fingerprint::new();
                fp.push_slice(out.data());
                fp.finish()
            }),
        });
    }

    {
        let data = data.clone();
        let mask = mask.clone();
        let gtab = phantom.gtab.clone();
        cases.push(KernelCase {
            name: "dtm_fit",
            shape: dmri_shape,
            runner: Box::new(move |par| {
                let (fa, md) = fit_dtm_volume_full_par(&data, &mask, &gtab, par);
                let mut fp = Fingerprint::new();
                fp.push_slice(fa.data());
                fp.push_slice(md.data());
                fp.finish()
            }),
        });
    }

    // Astronomy inputs.
    {
        let exposures = coadd_inputs();
        let (rows, cols) = exposures[0].dims();
        let shape = format!("{rows}x{cols}x{}", exposures.len());
        let params = CoaddParams::default();
        cases.push(KernelCase {
            name: "coadd_sigma_clip",
            shape,
            runner: Box::new(move |par| {
                fingerprint_coadd(&coadd_sigma_clip_par(&exposures, &params, par))
            }),
        });
    }

    {
        let survey = SkySurvey::generate(103, &SkySpec::test_scale());
        let flux = survey.visits[0][0].flux.clone();
        let shape = format!("{}x{}", flux.dims()[0], flux.dims()[1]);
        let params = sciops::astro::BackgroundParams {
            cell_size: 8,
            ..Default::default()
        };
        cases.push(KernelCase {
            name: "background_estimate",
            shape,
            runner: Box::new(move |par| {
                let bg = estimate_background_par(&flux, &params, par);
                let mut fp = Fingerprint::new();
                fp.push_slice(bg.data());
                fp.finish()
            }),
        });
    }

    {
        let exposures = coadd_inputs();
        let coadd = coadd_sigma_clip_par(&exposures, &CoaddParams::default(), Parallelism::Serial);
        let shape = format!("{}x{}", coadd.flux.dims()[0], coadd.flux.dims()[1]);
        let params = DetectParams::default();
        cases.push(KernelCase {
            name: "detect_sources",
            shape,
            runner: Box::new(move |par| {
                let sources = detect_sources_par(&coadd, &params, par);
                let mut fp = Fingerprint::new();
                fp.push_usize(sources.len());
                for s in &sources {
                    fp.push_f64(s.centroid.0);
                    fp.push_f64(s.centroid.1);
                    fp.push_f64(s.flux);
                    fp.push_f64(s.peak);
                    fp.push_usize(s.npix);
                }
                fp.finish()
            }),
        });
    }

    cases
}

/// One measurement row of a `scibench bench` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Kernel identifier.
    pub kernel: &'static str,
    /// Input shape string.
    pub shape: String,
    /// Worker threads used (1 = the serial reference path).
    pub threads: usize,
    /// Best-of-N wall clock per iteration.
    pub ns_per_iter: u64,
    /// `serial_ns / this_ns` — 1.0 for the serial row by construction.
    pub speedup_vs_serial: f64,
}

/// Time every kernel of [`suite`] — plus the compressed-vs-dense pairs
/// from [`crate::compress::bench_cases`] — at each thread level. Level 1
/// runs the serial path and anchors the speedup column.
pub fn run_bench(thread_levels: &[usize], reps: usize) -> Vec<BenchResult> {
    let mut results = Vec::new();
    let mut cases = suite();
    cases.extend(crate::compress::bench_cases());
    for case in cases {
        let serial_ns = case.time_ns(Parallelism::Serial, reps);
        for &threads in thread_levels {
            let ns = if threads <= 1 {
                serial_ns
            } else {
                case.time_ns(Parallelism::threads(threads), reps)
            };
            results.push(BenchResult {
                kernel: case.name,
                shape: case.shape.clone(),
                threads: threads.max(1),
                ns_per_iter: ns,
                speedup_vs_serial: serial_ns as f64 / ns as f64,
            });
        }
    }
    results
}

/// Render bench results as the `BENCH_kernels.json` document
/// (schema `scibench-bench-kernels/v1`). Hand-rolled writer: the workspace
/// has no JSON dependency, and the schema is flat.
pub fn results_to_json(results: &[BenchResult], host_parallelism: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-kernels/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}, \"speedup_vs_serial\": {:.4}}}{}\n",
            r.kernel,
            r.shape,
            r.threads,
            r.ns_per_iter,
            r.speedup_vs_serial,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_five_hot_kernels() {
        let names: Vec<&str> = suite().iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "nlm_denoise",
                "dtm_fit",
                "coadd_sigma_clip",
                "background_estimate",
                "detect_sources"
            ]
        );
    }

    #[test]
    fn fingerprints_stable_across_parallelism() {
        for case in suite() {
            let serial = case.run(Parallelism::Serial);
            let par = case.run(Parallelism::threads(4));
            assert_eq!(serial, par, "{} fingerprint diverged", case.name);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let results = vec![BenchResult {
            kernel: "nlm_denoise",
            shape: "12x12x10".into(),
            threads: 2,
            ns_per_iter: 1234,
            speedup_vs_serial: 1.5,
        }];
        let json = results_to_json(&results, 8);
        assert!(json.contains("\"schema\": \"scibench-bench-kernels/v1\""));
        assert!(json.contains("\"available_parallelism\": 8"));
        assert!(json.contains("\"single_core_host\": false"));
        assert!(json.contains("\"threads\": 2"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");

        let single = results_to_json(&results, 1);
        assert!(single.contains("\"single_core_host\": true"));
    }
}
