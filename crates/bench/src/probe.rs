//! Internal calibration probe: per-label time breakdowns for selected
//! lowered graphs. Not part of the public benchmark surface.

use scibench_core::costmodel::CostModel;
use scibench_core::lower::{astro, Engine, EngineProfiles};
use scibench_core::workload::AstroWorkload;
use simcluster::{simulate, ClusterSpec};
use std::collections::BTreeMap;

fn breakdown(
    name: &str,
    g: &simcluster::TaskGraph,
    cluster: &ClusterSpec,
    policy: simcluster::SchedPolicy,
    strict: bool,
) {
    match simulate(g, cluster, policy, strict) {
        Ok(r) => {
            let mut by_label: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
            for t in &r.timings {
                let e = by_label.entry(t.label).or_default();
                e.0 += t.finish - t.start;
                e.1 += 1;
            }
            println!(
                "--- {name}: makespan {:.0}s, util {:.2}, stolen {}",
                r.makespan,
                r.utilization(cluster.total_slots()),
                r.tasks_stolen
            );
            for (label, (busy, n)) in by_label {
                println!("    {label:<28} n={n:<6} busy={busy:>10.0} core-s");
            }
        }
        Err(e) => println!("--- {name}: FAILED: {e}"),
    }
}

fn main() {
    let cm = CostModel::default();
    let p = EngineProfiles::default();
    let cluster = ClusterSpec::r3_2xlarge(16);
    let w = AstroWorkload { visits: 24 };

    let g = astro::spark(&w, &cm, &p, &cluster);
    breakdown(
        "spark astro 24v",
        &g,
        &cluster,
        p.policy(Engine::Spark),
        false,
    );

    let myria_cluster = cluster.clone().with_worker_slots(4);
    let (g, strict) = astro::myria(
        &w,
        &cm,
        &p,
        &myria_cluster,
        engine_rel::ExecutionMode::Materialized,
    );
    breakdown(
        "myria astro materialized 24v",
        &g,
        &myria_cluster,
        p.policy(Engine::Myria),
        strict,
    );

    let w2 = AstroWorkload { visits: 2 };
    let (g, strict) = astro::myria(
        &w2,
        &cm,
        &p,
        &myria_cluster,
        engine_rel::ExecutionMode::MultiQuery { pieces: 2 },
    );
    breakdown(
        "myria astro multiquery 2v",
        &g,
        &myria_cluster,
        p.policy(Engine::Myria),
        strict,
    );
    let (g, strict) = astro::myria(
        &w2,
        &cm,
        &p,
        &myria_cluster,
        engine_rel::ExecutionMode::Pipelined,
    );
    breakdown(
        "myria astro pipelined 2v",
        &g,
        &myria_cluster,
        p.policy(Engine::Myria),
        strict,
    );
}
