//! The shared `"host"` block of every bench JSON artifact.
//!
//! Every emitter (`BENCH_kernels.json`, `BENCH_e2e.json`,
//! `BENCH_skew.json`, `BENCH_compress.json`, `BENCH_serve.json`,
//! `BENCH_ooc.json`) stamps the host's available parallelism, total
//! system memory, and the single-core flag, so a ~1x curve, a serial
//! wall time from a one-core host, or a spill measurement from a
//! memory-starved host can never be mistaken for a representative
//! measurement. One writer here keeps the schemas byte-compatible.

/// Detect the host's available parallelism (1 when the query fails).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Total system memory in bytes, from `/proc/meminfo`'s `MemTotal` line;
/// 0 when undetectable (non-Linux hosts, restricted procfs). The bench
/// crate is the sanctioned home for ambient host probes like this one —
/// library crates stay deterministic.
pub fn total_memory_bytes() -> u64 {
    let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") else {
        return 0;
    };
    meminfo
        .lines()
        .find_map(|line| line.strip_prefix("MemTotal:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// Render the shared host block, indented for a top-level JSON object:
/// `  "host": {...},` plus the trailing newline.
pub fn host_block(host_parallelism: usize) -> String {
    format!(
        "  \"host\": {{\n    \"available_parallelism\": {host_parallelism},\n    \
         \"total_memory_bytes\": {},\n    \"single_core_host\": {}\n  }},\n",
        total_memory_bytes(),
        host_parallelism == 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_flag_tracks_parallelism() {
        assert!(host_block(1).contains("\"single_core_host\": true"));
        assert!(host_block(8).contains("\"single_core_host\": false"));
        assert!(host_block(8).contains("\"available_parallelism\": 8"));
    }

    #[test]
    fn detection_reports_at_least_one() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn host_block_carries_total_memory() {
        assert!(host_block(1).contains("\"total_memory_bytes\": "));
        // On Linux (the CI host) /proc/meminfo is readable and non-zero;
        // elsewhere the probe degrades to the explicit 0 sentinel.
        if cfg!(target_os = "linux") {
            assert!(total_memory_bytes() > 0);
        }
    }
}
