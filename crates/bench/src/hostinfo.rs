//! The shared `"host"` block of every bench JSON artifact.
//!
//! All four emitters (`BENCH_kernels.json`, `BENCH_e2e.json`,
//! `BENCH_skew.json`, `BENCH_compress.json`) stamp the host's available
//! parallelism and the single-core flag so a ~1x curve or a serial wall
//! time from a one-core host can never be mistaken for a real parallel
//! measurement. One writer here keeps the four schemas byte-compatible.

/// Detect the host's available parallelism (1 when the query fails).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Render the shared host block, indented for a top-level JSON object:
/// `  "host": {...},` plus the trailing newline.
pub fn host_block(host_parallelism: usize) -> String {
    format!(
        "  \"host\": {{\n    \"available_parallelism\": {host_parallelism},\n    \
         \"single_core_host\": {}\n  }},\n",
        host_parallelism == 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_flag_tracks_parallelism() {
        assert!(host_block(1).contains("\"single_core_host\": true"));
        assert!(host_block(8).contains("\"single_core_host\": false"));
        assert!(host_block(8).contains("\"available_parallelism\": 8"));
    }

    #[test]
    fn detection_reports_at_least_one() {
        assert!(available_parallelism() >= 1);
    }
}
