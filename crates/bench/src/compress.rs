//! Compression benchmarks: per-codec ratios at the engine boundary,
//! compressed-vs-dense kernel runs, and full-pipeline fingerprint equality
//! between [`CompressMode::Off`] and [`CompressMode::Auto`].
//!
//! The scenario is the honest one for this workload: a flat-field
//! calibration stack (no sky sources, no background gradient) whose mask
//! and variance planes are constant — the planes the cost-model heuristic
//! ([`scibench_core::costmodel::choose_repr`]) packs — while the flux
//! plane carries noise in every pixel and stays dense. The run-level
//! kernel fast paths then consume the encoded planes directly, so the
//! compressed runs win on bytes touched (and usually on time) while the
//! fingerprints stay bit-identical with the dense runs. Results serialize
//! as `BENCH_compress.json` (schema `scibench-bench-compress/v1`).

use crate::kernels::Fingerprint;
use marray::{with_compress_mode, ChunkRepr, CodecCounter, CodecStats, CompressMode, NdArray};
use scibench_core::costmodel::{pack_for_boundary, PlaneKind};
use scibench_core::usecases::astro as astro_uc;
use scibench_core::usecases::neuro as neuro_uc;
use sciops::astro::geometry::Exposure;
use sciops::astro::{coadd_sigma_clip_par, estimate_background_par, BackgroundParams, CoaddParams};
use sciops::synth::sky::{SkySpec, SkySurvey};
use sciops::Parallelism;
use std::time::Instant;

/// Flat-field calibration geometry: no sources, no background gradient.
/// The variance plane is exactly the read-noise floor (Const) and the
/// mask is all-good (Const); the flux plane is pure noise (Dense).
fn flat_field_spec(quick: bool) -> SkySpec {
    let scale = if quick { 1 } else { 2 };
    SkySpec {
        sensor_width: 48 * scale,
        sensor_height: 48 * scale,
        n_sources: 0,
        bg_gradient: 0.0,
        dither: 0,
        patch_size: 36 * scale as u64,
        ..SkySpec::test_scale()
    }
}

/// Science geometry on a gradient-free sky: the variance plane is the
/// read-noise floor plus shot-noise islands under the sources — the
/// mostly-constant plane RLE is built for.
fn runny_science_spec(quick: bool) -> SkySpec {
    let scale = if quick { 1 } else { 2 };
    SkySpec {
        sensor_width: 48 * scale,
        sensor_height: 48 * scale,
        bg_gradient: 0.0,
        patch_size: 36 * scale as u64,
        ..SkySpec::test_scale()
    }
}

/// Compression outcome of one plane crossing an engine boundary.
#[derive(Debug, Clone)]
pub struct PlaneRow {
    /// Plane name: `mask`, `variance` or `flux`.
    pub plane: &'static str,
    /// Representation the cost-model heuristic chose.
    pub repr: ChunkRepr,
    /// Dense footprint in bytes.
    pub dense_bytes: u64,
    /// Stored footprint after the boundary chose (equals `dense_bytes`
    /// when the heuristic kept the plane dense).
    pub stored_bytes: u64,
    /// `dense_bytes / stored_bytes` — 1.0 for planes that stay dense.
    pub ratio: f64,
}

/// One kernel timed on the same inputs dense and compressed.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel identifier (matches `BENCH_kernels.json` names).
    pub kernel: &'static str,
    /// Input shape string.
    pub shape: String,
    /// Best-of-N nanoseconds on dense inputs.
    pub dense_ns: u64,
    /// Best-of-N nanoseconds on compressed inputs.
    pub compressed_ns: u64,
    /// `dense_ns / compressed_ns` — >1 means the run-level path is faster.
    pub time_ratio: f64,
    /// Input plane bytes a dense execution touches.
    pub dense_bytes_read: u64,
    /// Input plane bytes the compressed execution touches (encoded planes
    /// are consumed at their stored size by the run-level fast paths).
    pub compressed_bytes_read: u64,
    /// Dense and compressed fingerprints matched bit for bit.
    pub outputs_identical: bool,
}

/// One full pipeline run dense and compressed.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Use case: `astro` or `neuro`.
    pub pipeline: &'static str,
    /// Engine analog.
    pub engine: &'static str,
    /// Wall milliseconds with compression off.
    pub dense_ms: f64,
    /// Wall milliseconds with the boundary heuristic active.
    pub compressed_ms: f64,
    /// Off-mode and Auto-mode fingerprints matched bit for bit.
    pub outputs_identical: bool,
}

/// A whole `scibench bench compress` run.
#[derive(Debug, Clone)]
pub struct CompressRun {
    /// Boundary compression per plane kind.
    pub planes: Vec<PlaneRow>,
    /// Compressed-vs-dense kernel matrix.
    pub kernels: Vec<KernelRow>,
    /// Full-pipeline equality and timing.
    pub pipelines: Vec<PipelineRow>,
    /// Codec ledger delta over the compressed pipeline runs.
    pub codec: CodecStats,
}

fn plane_row<T: marray::Element>(
    plane: &'static str,
    arr: &NdArray<T>,
    kind: PlaneKind,
) -> PlaneRow {
    let packed = pack_for_boundary(arr, kind);
    let chosen = packed.as_ref().unwrap_or(arr);
    let dense = arr.nbytes() as u64;
    let stored = chosen.stored_nbytes() as u64;
    PlaneRow {
        plane,
        repr: chosen.repr(),
        dense_bytes: dense,
        stored_bytes: stored,
        ratio: dense as f64 / stored.max(1) as f64,
    }
}

/// Flat-field calibration stack: the same sensor exposed repeatedly
/// (undithered), one frame per visit — the stack whose mask and variance
/// planes are exactly constant.
fn flat_stack(quick: bool) -> Vec<Exposure> {
    let survey = SkySurvey::generate(314, &flat_field_spec(quick));
    survey.visits.iter().map(|v| v[0].clone()).collect()
}

fn pack_stack(stack: &[Exposure]) -> Vec<Exposure> {
    stack
        .iter()
        .map(|e| Exposure {
            visit: e.visit,
            sensor: e.sensor,
            bbox: e.bbox,
            flux: pack_for_boundary(&e.flux, PlaneKind::Flux).unwrap_or_else(|| e.flux.clone()),
            variance: pack_for_boundary(&e.variance, PlaneKind::Variance)
                .unwrap_or_else(|| e.variance.clone()),
            mask: pack_for_boundary(&e.mask, PlaneKind::Mask).unwrap_or_else(|| e.mask.clone()),
        })
        .collect()
}

fn stack_stored_bytes(stack: &[Exposure]) -> u64 {
    stack.iter().map(|e| e.stored_nbytes() as u64).sum()
}

fn time_ns(reps: usize, mut f: impl FnMut() -> u64) -> (u64, u64) {
    let fp = f();
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let got = f();
        best = best.min(t.elapsed().as_nanos() as u64);
        assert_eq!(got, fp, "kernel output changed between timing reps");
    }
    (best.max(1), fp)
}

fn fingerprint_coadd(c: &sciops::astro::coadd::Coadd) -> u64 {
    let mut fp = Fingerprint::new();
    fp.push_slice(c.flux.data());
    fp.push_slice(c.variance.data());
    for &d in c.depth.data() {
        fp.push_usize(d as usize);
    }
    fp.finish()
}

/// The compressed-vs-dense kernel matrix: sigma-clip coadd on the
/// flat-field stack (Const mask + Const variance feed the run-level
/// plans) and background estimation on the mostly-constant variance
/// plane (the Rle run table feeds the per-cell gather + median memo).
pub fn kernel_matrix(quick: bool, reps: usize) -> Vec<KernelRow> {
    let mut rows = Vec::new();

    {
        let dense = flat_stack(quick);
        let packed = pack_stack(&dense);
        let (rows_px, cols_px) = dense[0].dims();
        let shape = format!("{rows_px}x{cols_px}x{}", dense.len());
        let params = CoaddParams::default();
        let (dense_ns, fp_dense) = time_ns(reps, || {
            fingerprint_coadd(&coadd_sigma_clip_par(&dense, &params, Parallelism::Serial))
        });
        let (compressed_ns, fp_packed) = time_ns(reps, || {
            fingerprint_coadd(&coadd_sigma_clip_par(&packed, &params, Parallelism::Serial))
        });
        rows.push(KernelRow {
            kernel: "coadd_sigma_clip",
            shape,
            dense_ns,
            compressed_ns,
            time_ratio: dense_ns as f64 / compressed_ns as f64,
            dense_bytes_read: stack_stored_bytes(&dense),
            compressed_bytes_read: stack_stored_bytes(&packed),
            outputs_identical: fp_dense == fp_packed,
        });
    }

    {
        let survey = SkySurvey::generate(315, &runny_science_spec(quick));
        let image = survey.visits[0][0].variance.clone();
        let packed = pack_for_boundary(&image, PlaneKind::Variance)
            .expect("gradient-free variance plane must clear the RLE break-even");
        let shape = format!("{}x{}", image.dims()[0], image.dims()[1]);
        let params = BackgroundParams {
            cell_size: 8,
            ..Default::default()
        };
        let fp_of = |img: &NdArray<f64>| {
            let bg = estimate_background_par(img, &params, Parallelism::Serial);
            let mut fp = Fingerprint::new();
            fp.push_slice(bg.data());
            fp.finish()
        };
        let (dense_ns, fp_dense) = time_ns(reps, || fp_of(&image));
        let (compressed_ns, fp_packed) = time_ns(reps, || fp_of(&packed));
        rows.push(KernelRow {
            kernel: "background_estimate",
            shape,
            dense_ns,
            compressed_ns,
            time_ratio: dense_ns as f64 / compressed_ns as f64,
            dense_bytes_read: image.nbytes() as u64,
            compressed_bytes_read: packed.stored_nbytes() as u64,
            outputs_identical: fp_dense == fp_packed,
        });
    }

    rows
}

/// The compressed-vs-dense pairs `scibench bench` appends to the kernel
/// matrix: the two run-level kernels, each on the same inputs dense and
/// boundary-packed, so `BENCH_kernels.json` carries a paired row per
/// representation at every thread level.
pub fn bench_cases() -> Vec<crate::kernels::KernelCase> {
    let mut cases = Vec::new();

    let dense = flat_stack(true);
    let packed = pack_stack(&dense);
    let (rows_px, cols_px) = dense[0].dims();
    let shape = format!("{rows_px}x{cols_px}x{}", dense.len());
    let params = CoaddParams::default();
    for (name, stack) in [("coadd_flat_dense", dense), ("coadd_flat_codec", packed)] {
        cases.push(crate::kernels::KernelCase::new(
            name,
            shape.clone(),
            Box::new(move |par| fingerprint_coadd(&coadd_sigma_clip_par(&stack, &params, par))),
        ));
    }

    let survey = SkySurvey::generate(315, &runny_science_spec(true));
    let image = survey.visits[0][0].variance.clone();
    let packed = pack_for_boundary(&image, PlaneKind::Variance)
        .expect("gradient-free variance plane must clear the RLE break-even");
    let shape = format!("{}x{}", image.dims()[0], image.dims()[1]);
    let params = BackgroundParams {
        cell_size: 8,
        ..Default::default()
    };
    for (name, img) in [
        ("background_runny_dense", image),
        ("background_runny_codec", packed),
    ] {
        cases.push(crate::kernels::KernelCase::new(
            name,
            shape.clone(),
            Box::new(move |par| {
                let bg = estimate_background_par(&img, &params, par);
                let mut fp = Fingerprint::new();
                fp.push_slice(bg.data());
                fp.finish()
            }),
        ));
    }

    cases
}

/// Run the whole compression suite.
pub fn run_compress(quick: bool) -> CompressRun {
    // Per-plane boundary outcomes, measured on a science exposure (with
    // sources) so the variance row exercises Rle rather than Const.
    let survey = SkySurvey::generate(315, &runny_science_spec(quick));
    let e = &survey.visits[0][0];
    let planes = vec![
        plane_row("mask", &e.mask, PlaneKind::Mask),
        plane_row("variance", &e.variance, PlaneKind::Variance),
        plane_row("flux", &e.flux, PlaneKind::Flux),
    ];

    let kernels = kernel_matrix(quick, if quick { 2 } else { 3 });

    // Full pipelines, compression off vs the boundary heuristic: the
    // fingerprints must match bit for bit — compression is a
    // representation choice, never a numeric one.
    let mut pipelines = Vec::new();
    let codec_before = CodecCounter::snapshot();
    {
        let astro_survey = SkySurvey::generate(99, &SkySpec::test_scale());
        let run = || {
            let t = Instant::now();
            let fp = crate::e2e::fingerprint_astro(&astro_uc::spark(&astro_survey, 6));
            (fp, t.elapsed().as_secs_f64() * 1e3)
        };
        let (fp_off, dense_ms) = with_compress_mode(CompressMode::Off, run);
        let (fp_auto, compressed_ms) = with_compress_mode(CompressMode::Auto, run);
        pipelines.push(PipelineRow {
            pipeline: "astro",
            engine: "spark",
            dense_ms,
            compressed_ms,
            outputs_identical: fp_off == fp_auto,
        });
    }
    {
        let subs = crate::e2e::subjects(1);
        let run = || {
            let t = Instant::now();
            let fp = crate::e2e::fingerprint_fa(&neuro_uc::spark(&subs, 8));
            (fp, t.elapsed().as_secs_f64() * 1e3)
        };
        let (fp_off, dense_ms) = with_compress_mode(CompressMode::Off, run);
        let (fp_auto, compressed_ms) = with_compress_mode(CompressMode::Auto, run);
        pipelines.push(PipelineRow {
            pipeline: "neuro",
            engine: "spark",
            dense_ms,
            compressed_ms,
            outputs_identical: fp_off == fp_auto,
        });
    }
    let codec = CodecCounter::snapshot().since(&codec_before);

    CompressRun {
        planes,
        kernels,
        pipelines,
        codec,
    }
}

/// Render a run as the `BENCH_compress.json` document
/// (schema `scibench-bench-compress/v1`). Hand-rolled like the other
/// bench writers: no JSON dependency in the workspace.
pub fn results_to_json(run: &CompressRun, host_parallelism: usize, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scibench-bench-compress/v1\",\n");
    out.push_str(&crate::hostinfo::host_block(host_parallelism));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"planes\": [\n");
    for (i, p) in run.planes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"plane\": \"{}\", \"repr\": \"{}\", \"dense_bytes\": {}, \
             \"stored_bytes\": {}, \"ratio\": {:.2}}}{}\n",
            p.plane,
            p.repr.as_str(),
            p.dense_bytes,
            p.stored_bytes,
            p.ratio,
            if i + 1 < run.planes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernels\": [\n");
    for (i, k) in run.kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"dense_ns\": {}, \
             \"compressed_ns\": {}, \"time_ratio\": {:.3}, \"dense_bytes_read\": {}, \
             \"compressed_bytes_read\": {}, \"outputs_identical\": {}}}{}\n",
            k.kernel,
            k.shape,
            k.dense_ns,
            k.compressed_ns,
            k.time_ratio,
            k.dense_bytes_read,
            k.compressed_bytes_read,
            k.outputs_identical,
            if i + 1 < run.kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"pipelines\": [\n");
    for (i, p) in run.pipelines.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pipeline\": \"{}\", \"engine\": \"{}\", \"dense_ms\": {:.2}, \
             \"compressed_ms\": {:.2}, \"outputs_identical\": {}}}{}\n",
            p.pipeline,
            p.engine,
            p.dense_ms,
            p.compressed_ms,
            p.outputs_identical,
            if i + 1 < run.pipelines.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"codec\": {\n");
    let codecs: Vec<String> = run
        .codec
        .by_codec
        .iter()
        .map(|(name, s)| {
            format!(
                "    \"{name}\": {{\"encodes\": {}, \"decodes\": {}, \"dense_bytes\": {}, \
                 \"encoded_bytes\": {}}}",
                s.encodes, s.decodes, s.dense_bytes, s.encoded_bytes
            )
        })
        .collect();
    out.push_str(&codecs.join(",\n"));
    if !codecs.is_empty() {
        out.push('\n');
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_field_planes_compress_and_flux_stays_dense() {
        let stack = flat_stack(true);
        let packed = pack_stack(&stack);
        for e in &packed {
            assert_eq!(e.mask.repr(), ChunkRepr::Const);
            assert_eq!(e.variance.repr(), ChunkRepr::Const);
            assert_eq!(e.flux.repr(), ChunkRepr::Dense);
        }
        assert!(stack_stored_bytes(&packed) < stack_stored_bytes(&stack) / 2);
    }

    #[test]
    fn kernel_matrix_is_bit_identical_and_moves_fewer_bytes() {
        for row in kernel_matrix(true, 1) {
            assert!(row.outputs_identical, "{} diverged", row.kernel);
            assert!(
                row.compressed_bytes_read < row.dense_bytes_read,
                "{}: {} vs {}",
                row.kernel,
                row.compressed_bytes_read,
                row.dense_bytes_read
            );
        }
    }

    #[test]
    fn plane_rows_hit_the_acceptance_ratios() {
        let survey = SkySurvey::generate(315, &runny_science_spec(true));
        let e = &survey.visits[0][0];
        let mask = plane_row("mask", &e.mask, PlaneKind::Mask);
        let var = plane_row("variance", &e.variance, PlaneKind::Variance);
        let flux = plane_row("flux", &e.flux, PlaneKind::Flux);
        assert!(mask.ratio >= 2.0, "mask ratio {}", mask.ratio);
        assert!(var.ratio >= 2.0, "variance ratio {}", var.ratio);
        assert_eq!(flux.repr, ChunkRepr::Dense);
        assert!((flux.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_schema_and_fields_are_stable() {
        let run = CompressRun {
            planes: vec![PlaneRow {
                plane: "mask",
                repr: ChunkRepr::Const,
                dense_bytes: 2304,
                stored_bytes: 9,
                ratio: 256.0,
            }],
            kernels: vec![KernelRow {
                kernel: "coadd_sigma_clip",
                shape: "36x36x6".into(),
                dense_ns: 1000,
                compressed_ns: 800,
                time_ratio: 1.25,
                dense_bytes_read: 100,
                compressed_bytes_read: 50,
                outputs_identical: true,
            }],
            pipelines: vec![PipelineRow {
                pipeline: "astro",
                engine: "spark",
                dense_ms: 10.0,
                compressed_ms: 9.0,
                outputs_identical: true,
            }],
            codec: CodecStats::default(),
        };
        let json = results_to_json(&run, 1, true);
        assert!(json.contains("\"schema\": \"scibench-bench-compress/v1\""));
        assert!(json.contains("\"single_core_host\": true"));
        assert!(json.contains("\"repr\": \"const\""));
        assert!(json.contains("\"ratio\": 256.00"));
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
