//! Repeat-execution contract of the fingerprint-keyed memo table:
//!
//! * a cache hit is **bit-identical** to recomputing the kernel,
//! * serving the hit moves **zero payload bytes** (the value is a
//!   reference-count bump on the shared chunk, verified by marray's
//!   `CopyCounter` deep-copy ledger),
//! * uncertified keys are never stored and never served.
//!
//! The cached payload is a real pipeline product: the Step-1N mean-b0
//! volume of the neuroimaging use case, computed by the same
//! `segmentation` kernel the operator-binding tables name.

use marray::{with_copy_mode, CopyCounter, CopyMode, NdArray};
use scimemo::MemoTable;
use sciops::neuro::pipeline::segmentation;
use sciops::synth::dmri::{DmriPhantom, DmriSpec};

/// Run Step 1N of the neuro pipeline on a deterministic phantom.
fn step_1n(seed: u64) -> NdArray<f64> {
    let ph = DmriPhantom::generate(seed, &DmriSpec::test_scale());
    let data = ph.data.map(f64::from);
    segmentation(&data, &ph.gtab).0
}

fn bit_identical(a: &NdArray<f64>, b: &NdArray<f64>) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn certified_hit_is_bit_identical_and_zero_copy() {
    with_copy_mode(CopyMode::Shared, || {
        let mut table: MemoTable<NdArray<f64>> = MemoTable::new();
        let key = 0x5eed_0001;

        let first = table.get_or_compute(key, true, || step_1n(7));
        assert_eq!(table.stats().misses, 1);

        // The hit: no recompute, no payload movement.
        let before = CopyCounter::snapshot();
        let hit = table.get_or_compute(key, true, || unreachable!("must hit"));
        let moved = CopyCounter::snapshot().since(&before);
        assert_eq!(moved.copies, 0, "cache hit deep-copied: {moved:?}");
        assert_eq!(moved.bytes, 0, "cache hit moved payload bytes: {moved:?}");
        assert!(
            hit.shares_buffer(&first),
            "hit must be a zero-copy share of the stored chunk"
        );

        // Bit-identity against an independent recompute of the kernel.
        let recomputed = step_1n(7);
        assert!(!recomputed.shares_buffer(&hit));
        assert!(
            bit_identical(&hit, &recomputed),
            "cache hit diverged from recompute"
        );
        assert_eq!(table.stats().hits, 1);
    });
}

#[test]
fn uncertified_nodes_are_recomputed_and_never_stored() {
    with_copy_mode(CopyMode::Shared, || {
        let mut table: MemoTable<NdArray<f64>> = MemoTable::new();
        let key = 0xbad_0001;

        let a = table.get_or_compute(key, false, || step_1n(9));
        let b = table.get_or_compute(key, false, || step_1n(9));
        assert!(table.is_empty(), "uncertified probe populated the table");
        assert_eq!(table.stats().bypasses, 2);
        // Both runs executed the kernel: same bits, distinct buffers.
        assert!(!a.shares_buffer(&b));
        assert!(bit_identical(&a, &b));
    });
}

#[test]
fn different_fingerprints_do_not_collide() {
    with_copy_mode(CopyMode::Shared, || {
        let mut table: MemoTable<NdArray<f64>> = MemoTable::new();
        let a = table.get_or_compute(1, true, || step_1n(7));
        let b = table.get_or_compute(2, true, || step_1n(8));
        assert!(!a.shares_buffer(&b));
        assert!(!bit_identical(&a, &b));
        assert_eq!(table.len(), 2);
    });
}
