//! Static memoization-soundness certifier.
//!
//! A result cache keyed by plan fingerprints is only sound if two
//! conditions hold for every node it serves:
//!
//! 1. **Key completeness** — the fingerprint covers every input that can
//!    change the node's output. [`plancheck::node_fingerprints`] provides
//!    the canonical content hash (operator kind + parameters + input
//!    fingerprints) and its tests prove the inclusion/exclusion policy.
//! 2. **Operator determinism** — the code the node runs computes a pure
//!    function of those fingerprinted inputs. The purity lattice in
//!    [`scilint::purity`] provides per-function verdicts with witness
//!    chains.
//!
//! This crate joins the two: given a lowered [`simcluster::TaskGraph`],
//! the engine's operator-binding tables ([`plancheck::OpBinding`]), and a
//! workspace [`PurityTable`], [`certify`] produces a per-node
//! [`NodeDecision`] saying whether the node may be served from the cache,
//! and if not, why — down to the exact impure sink reachable from its
//! kernels. [`table::MemoTable`] is the runtime half: a fingerprint-keyed
//! cache over zero-copy chunk shares that refuses uncertified keys.

pub mod report;
pub mod table;

pub use report::{ConfigReport, FixtureReport, Report, StatsBlock};
pub use table::{MemoStats, MemoTable, Probe, SharedMemoTable};

use plancheck::{node_fingerprints, OpBinding, OpClass};
use scilint::purity::PurityTable;
use simcluster::TaskGraph;

/// What a task-graph node does, as far as the cache is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Versioned input ingest: deterministic given the fingerprinted
    /// input identity, cacheable.
    Source,
    /// Control plane (schedulers, barriers, submit/poll loops): produces
    /// no payload, never cached, transparent to downstream certification.
    Infra,
    /// Pure data movement (distribute/gather/broadcast): no kernel runs,
    /// output is a rearrangement of certified inputs.
    Movement,
    /// Runs one or more named compute kernels.
    Kernel,
    /// No binding table entry: conservatively uncacheable.
    Unbound,
}

impl NodeClass {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NodeClass::Source => "source",
            NodeClass::Infra => "infra",
            NodeClass::Movement => "movement",
            NodeClass::Kernel => "kernel",
            NodeClass::Unbound => "unbound",
        }
    }
}

/// The cacheability decision for one task-graph node.
#[derive(Debug, Clone)]
pub struct NodeDecision {
    /// Task index within the lowered graph.
    pub task: usize,
    /// The task's label.
    pub label: &'static str,
    /// Canonical content fingerprint ([`plancheck::node_fingerprints`]).
    pub fingerprint: u64,
    /// What the node does.
    pub class: NodeClass,
    /// True when the node and every transitive input computes a
    /// deterministic function of the fingerprinted inputs.
    pub sound: bool,
    /// Sound and payload-bearing: the cache may serve this fingerprint.
    pub certified: bool,
    /// Why the node is not sound (empty when it is). Names the first
    /// offending kernel or input.
    pub reason: String,
    /// Rendered purity witness chain (`fn (path:line)` hops, sink last)
    /// when an impure kernel decides the verdict.
    pub witness: Vec<String>,
}

/// The full certification of one lowered plan.
#[derive(Debug, Clone)]
pub struct Certification {
    /// One decision per task, in task order.
    pub nodes: Vec<NodeDecision>,
    /// Whole-plan fingerprint ([`plancheck::graph_fingerprint`]).
    pub graph_fingerprint: u64,
}

impl Certification {
    /// Number of certified (cache-eligible) nodes.
    pub fn certified_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.certified).count()
    }

    /// Decisions for nodes that are payload-bearing but not certified,
    /// i.e. actual cache rejections (infra nodes are not rejections).
    pub fn rejections(&self) -> impl Iterator<Item = &NodeDecision> {
        self.nodes
            .iter()
            .filter(|n| !n.certified && n.class != NodeClass::Infra)
    }
}

/// Render a purity witness chain for the report: each hop as
/// `name (path:line)`, then the sink description.
fn render_witness(v: &scilint::purity::PurityVerdict) -> Vec<String> {
    let mut out: Vec<String> = v
        .witness
        .iter()
        .map(|h| format!("{} ({}:{})", h.name, h.path, h.line))
        .collect();
    if !v.sink.is_empty() {
        out.push(format!("{} ({}:{})", v.sink, v.sink_path, v.sink_line));
    }
    out
}

/// Certify every node of a lowered plan against the operator-binding
/// tables and the workspace purity table.
///
/// A node is **sound** iff its own class permits memoization (sources,
/// movement, and kernels whose every named function has a
/// [`scilint::purity::Purity::memoizable`] worst-case verdict) and every
/// dependency is sound. Infra nodes are sound but never certified: they
/// carry no payload, so they pass soundness through without becoming
/// cache entries themselves. Unknown labels are conservatively unsound.
pub fn certify(graph: &TaskGraph, tables: &[&[OpBinding]], purity: &PurityTable) -> Certification {
    let fps = node_fingerprints(graph);
    let tasks = graph.tasks();
    let mut nodes: Vec<NodeDecision> = Vec::with_capacity(tasks.len());

    for (i, t) in tasks.iter().enumerate() {
        let mut reason = String::new();
        let mut witness = Vec::new();

        let class = if t.is_barrier {
            NodeClass::Infra
        } else {
            match plancheck::memo::lookup(tables, t.label).map(|b| b.class) {
                None => NodeClass::Unbound,
                Some(OpClass::Source) => NodeClass::Source,
                Some(OpClass::Infra) => NodeClass::Infra,
                Some(OpClass::Kernel([])) => NodeClass::Movement,
                Some(OpClass::Kernel(_)) => NodeClass::Kernel,
            }
        };

        let mut sound = match class {
            NodeClass::Unbound => {
                reason = format!("no operator binding for label `{}`", t.label);
                false
            }
            NodeClass::Kernel => {
                let names = match plancheck::memo::lookup(tables, t.label).map(|b| b.class) {
                    Some(OpClass::Kernel(names)) => names,
                    _ => unreachable!("class Kernel implies a Kernel binding"),
                };
                let mut ok = true;
                for name in names {
                    match purity.worst_named(name) {
                        None => {
                            reason =
                                format!("kernel `{name}` has no purity verdict in the workspace");
                            ok = false;
                            break;
                        }
                        Some(v) if !v.level.memoizable() => {
                            reason = format!(
                                "kernel `{name}` is {} via {} ({}:{})",
                                v.level.name(),
                                v.sink,
                                v.sink_path,
                                v.sink_line
                            );
                            witness = render_witness(v);
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                ok
            }
            // Sources, movement, and infra are sound on their own; their
            // certification rides on their inputs below.
            NodeClass::Source | NodeClass::Movement | NodeClass::Infra => true,
        };

        if sound {
            // Deps always point at earlier tasks (TaskGraph::add appends),
            // so decisions for them already exist.
            if let Some(&bad) = t.deps.iter().find(|&&d| !nodes[d].sound) {
                sound = false;
                reason = format!(
                    "input task {bad} (`{}`) is not certified: {}",
                    nodes[bad].label, nodes[bad].reason
                );
            }
        }

        let certified = sound && class != NodeClass::Infra;
        nodes.push(NodeDecision {
            task: i,
            label: t.label,
            fingerprint: fps[i],
            class,
            sound,
            certified,
            reason,
            witness,
        });
    }

    Certification {
        nodes,
        graph_fingerprint: plancheck::graph_fingerprint(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plancheck::OpBinding;
    use simcluster::{TaskGraph, TaskSpec};

    fn purity_of(src: &str) -> PurityTable {
        let f = scilint::source::SourceFile::parse(
            "crates/sciops/src/lib.rs",
            "sciops",
            scilint::source::FileKind::Library,
            src,
        );
        scilint::purity::analyze(&[f])
    }

    const EMPTY: &[&str] = &[];
    const TABLE: &[OpBinding] = &[
        OpBinding::new("ingest", OpClass::Source),
        OpBinding::new("barrier", OpClass::Infra),
        OpBinding::new("shuffle", OpClass::Kernel(EMPTY)),
        OpBinding::new("clean", OpClass::Kernel(&["clean_kernel"])),
        OpBinding::new("dirty", OpClass::Kernel(&["dirty_kernel"])),
    ];

    const SRC: &str = "pub fn clean_kernel(x: f64) -> f64 { x * 2.0 }\n\
                       pub fn dirty_kernel() -> String { std::env::var(\"MODE\").unwrap() }\n";

    fn chain_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("ingest", 1.0).output(10));
        let b = g.add(TaskSpec::compute("clean", 2.0).after(&[a]));
        let c = g.add(TaskSpec::compute("shuffle", 0.0).after(&[b]));
        g.add(TaskSpec::compute("clean", 1.0).after(&[c]));
        g
    }

    #[test]
    fn pure_chain_is_fully_certified() {
        let cert = certify(&chain_graph(), &[TABLE], &purity_of(SRC));
        assert_eq!(cert.certified_count(), 4);
        assert!(cert.nodes.iter().all(|n| n.sound && n.reason.is_empty()));
        assert_eq!(cert.nodes[2].class, NodeClass::Movement);
    }

    #[test]
    fn ambient_read_kernel_is_rejected_with_witness() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("ingest", 1.0));
        g.add(TaskSpec::compute("dirty", 2.0).after(&[a]));
        let cert = certify(&g, &[TABLE], &purity_of(SRC));
        let n = &cert.nodes[1];
        assert!(!n.certified && !n.sound);
        assert!(n.reason.contains("dirty_kernel"), "{}", n.reason);
        assert!(n.reason.contains("ambient_read"), "{}", n.reason);
        assert!(
            n.witness.iter().any(|h| h.contains("dirty_kernel")),
            "{:?}",
            n.witness
        );
    }

    #[test]
    fn unsoundness_poisons_downstream_nodes() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("dirty", 1.0));
        let b = g.add(TaskSpec::compute("clean", 2.0).after(&[a]));
        g.add(TaskSpec::compute("clean", 3.0).after(&[b]));
        let cert = certify(&g, &[TABLE], &purity_of(SRC));
        assert_eq!(cert.certified_count(), 0);
        assert!(cert.nodes[1].reason.contains("input task 0"));
        assert!(cert.nodes[2].reason.contains("input task 1"));
    }

    #[test]
    fn infra_nodes_pass_soundness_through_but_are_never_cached() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("ingest", 1.0));
        let b = g.barrier("barrier", &[a]);
        g.add(TaskSpec::compute("clean", 1.0).after(&[b]));
        let cert = certify(&g, &[TABLE], &purity_of(SRC));
        assert!(cert.nodes[1].sound && !cert.nodes[1].certified);
        assert_eq!(cert.nodes[1].class, NodeClass::Infra);
        assert!(cert.nodes[2].certified);
        assert_eq!(cert.rejections().count(), 0);
    }

    #[test]
    fn unbound_labels_are_conservatively_rejected() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("mystery-op", 1.0));
        let cert = certify(&g, &[TABLE], &purity_of(SRC));
        assert!(!cert.nodes[0].certified);
        assert_eq!(cert.nodes[0].class, NodeClass::Unbound);
        assert!(cert.nodes[0].reason.contains("mystery-op"));
        assert_eq!(cert.rejections().count(), 1);
    }

    #[test]
    fn engine_table_shadows_shared_table() {
        const SHARED: &[OpBinding] = &[OpBinding::new("clean", OpClass::Infra)];
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("clean", 1.0));
        // Engine table first: "clean" resolves to the kernel binding.
        let cert = certify(&g, &[TABLE, SHARED], &purity_of(SRC));
        assert_eq!(cert.nodes[0].class, NodeClass::Kernel);
        // Shared-only: the Infra binding wins.
        let cert = certify(&g, &[SHARED], &purity_of(SRC));
        assert_eq!(cert.nodes[0].class, NodeClass::Infra);
    }

    #[test]
    fn decisions_carry_node_fingerprints() {
        let g = chain_graph();
        let cert = certify(&g, &[TABLE], &purity_of(SRC));
        let fps = node_fingerprints(&g);
        assert_eq!(
            cert.nodes.iter().map(|n| n.fingerprint).collect::<Vec<_>>(),
            fps
        );
        assert_eq!(cert.graph_fingerprint, plancheck::graph_fingerprint(&g));
    }
}
