//! The runtime half of the certifier: a fingerprint-keyed memo table.
//!
//! Keys are the canonical node fingerprints of
//! [`plancheck::node_fingerprints`]; values are whatever payload the
//! caller produces — in the engines that is an
//! [`marray::NdArray`](marray) whose `clone` is a reference-count bump on
//! the shared [`marray::ChunkBuf`], so both storing a computed result and
//! serving a hit move **zero payload bytes** (verified by the
//! `CopyCounter` in this crate's tests).
//!
//! The table enforces the certifier's gate at the API: every probe states
//! whether the static certificate covers the key, and uncertified probes
//! always recompute and never populate the table. There is no way to
//! insert a value without asserting certification, so an unsound node can
//! never be served stale results even if its fingerprint collides with
//! nothing.

use std::collections::BTreeMap;

/// Cache traffic counters, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Probes served from the table.
    pub hits: u64,
    /// Certified probes that computed and populated the table.
    pub misses: u64,
    /// Uncertified probes: computed, never stored, never served.
    pub bypasses: u64,
}

/// A fingerprint-keyed result cache gated by the static certificate.
#[derive(Debug, Default)]
pub struct MemoTable<V> {
    entries: BTreeMap<u64, V>,
    stats: MemoStats,
}

impl<V: Clone> MemoTable<V> {
    /// An empty table.
    pub fn new() -> MemoTable<V> {
        MemoTable {
            entries: BTreeMap::new(),
            stats: MemoStats::default(),
        }
    }

    /// Serve `key` from the table, or run `compute` and (when `certified`)
    /// remember the result.
    ///
    /// `certified` is the verdict of [`crate::certify`] for the node that
    /// produced `key`. Uncertified probes never touch the table in either
    /// direction: the result is recomputed every time, and nothing is
    /// stored, so a later *certified* node whose fingerprint happens to
    /// equal `key` cannot observe an unsound value.
    pub fn get_or_compute(&mut self, key: u64, certified: bool, compute: impl FnOnce() -> V) -> V {
        if !certified {
            self.stats.bypasses += 1;
            return compute();
        }
        if let Some(v) = self.entries.get(&key) {
            self.stats.hits += 1;
            return v.clone();
        }
        let v = compute();
        self.entries.insert(key, v.clone());
        self.stats.misses += 1;
        v
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_bypass_accounting() {
        let mut t: MemoTable<u64> = MemoTable::new();
        assert_eq!(t.get_or_compute(7, true, || 42), 42);
        assert_eq!(t.get_or_compute(7, true, || unreachable!()), 42);
        assert_eq!(t.get_or_compute(9, false, || 5), 5);
        assert_eq!(t.get_or_compute(9, false, || 6), 6); // recomputed
        assert!(!t.contains(9));
        assert_eq!(
            t.stats(),
            MemoStats {
                hits: 1,
                misses: 1,
                bypasses: 2
            }
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn uncertified_probe_cannot_poison_a_certified_key() {
        let mut t: MemoTable<&'static str> = MemoTable::new();
        assert_eq!(t.get_or_compute(1, false, || "unsound"), "unsound");
        // The same fingerprint probed with a certificate sees a cold
        // table, not the unsound value.
        assert_eq!(t.get_or_compute(1, true, || "sound"), "sound");
        assert_eq!(t.get_or_compute(1, true, || unreachable!()), "sound");
    }
}
