//! The runtime half of the certifier: a fingerprint-keyed memo table.
//!
//! Keys are the canonical node fingerprints of
//! [`plancheck::node_fingerprints`]; values are whatever payload the
//! caller produces — in the engines that is an
//! [`marray::NdArray`](marray) whose `clone` is a reference-count bump on
//! the shared [`marray::ChunkBuf`], so both storing a computed result and
//! serving a hit move **zero payload bytes** (verified by the
//! `CopyCounter` in this crate's tests).
//!
//! The table enforces the certifier's gate at the API: every probe states
//! whether the static certificate covers the key, and uncertified probes
//! always recompute and never populate the table. There is no way to
//! insert a value without asserting certification, so an unsound node can
//! never be served stale results even if its fingerprint collides with
//! nothing.
//!
//! Two residency policies coexist:
//!
//! * an unbounded table ([`MemoTable::new`]) — every certified result
//!   stays resident, the mode the single-process sweeps use;
//! * a byte-budgeted table ([`MemoTable::with_budget`]) — each admitted
//!   entry declares a weight, and admission evicts least-recently-used
//!   entries until the total weight fits the budget again. Eviction is a
//!   capacity decision, never a soundness one: an evicted key simply
//!   recomputes (and re-admits) on its next certified probe.
//!
//! [`SharedMemoTable`] wraps the table in a poisoning-safe mutex for use
//! from `&self` contexts — the resident query service serves many
//! concurrent requests against one process-wide table. The `compute`
//! closure runs *outside* the lock, so a slow recompute never blocks
//! other keys; two threads racing the same cold key may both compute, but
//! the workspace determinism contract makes their values bit-identical,
//! so whichever admission lands first is indistinguishable from the
//! other.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Cache traffic counters, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Probes served from the table.
    pub hits: u64,
    /// Certified probes that computed and populated the table.
    pub misses: u64,
    /// Uncertified probes: computed, never stored, never served.
    pub bypasses: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Total declared weight of the evicted entries.
    pub evicted_bytes: u64,
}

/// How one probe was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Served from the table (a clone of the resident value).
    Hit,
    /// Computed and admitted (the probe was certified).
    Miss,
    /// Computed and discarded (the probe was uncertified).
    Bypass,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    weight: u64,
    last_used: u64,
}

/// A fingerprint-keyed result cache gated by the static certificate.
#[derive(Debug, Default)]
pub struct MemoTable<V> {
    entries: BTreeMap<u64, Entry<V>>,
    stats: MemoStats,
    /// LRU byte budget; `None` means unbounded.
    budget: Option<u64>,
    resident_bytes: u64,
    /// Monotonic probe clock driving the LRU order.
    tick: u64,
}

impl<V: Clone> MemoTable<V> {
    /// An empty, unbounded table.
    pub fn new() -> MemoTable<V> {
        MemoTable {
            entries: BTreeMap::new(),
            stats: MemoStats::default(),
            budget: None,
            resident_bytes: 0,
            tick: 0,
        }
    }

    /// An empty table that evicts least-recently-used entries once the
    /// total admitted weight exceeds `budget_bytes`. The most recently
    /// admitted entry is never evicted, even when it alone exceeds the
    /// budget — a result that was just computed is always servable once.
    pub fn with_budget(budget_bytes: u64) -> MemoTable<V> {
        MemoTable {
            budget: Some(budget_bytes),
            ..MemoTable::new()
        }
    }

    /// Serve `key` from the table, or run `compute` and (when `certified`)
    /// remember the result.
    ///
    /// `certified` is the verdict of [`crate::certify`] for the node that
    /// produced `key`. Uncertified probes never touch the table in either
    /// direction: the result is recomputed every time, and nothing is
    /// stored, so a later *certified* node whose fingerprint happens to
    /// equal `key` cannot observe an unsound value.
    ///
    /// Entries admitted through this method carry zero weight (they never
    /// count against a byte budget); use [`MemoTable::get_or_compute_weighed`]
    /// when residency should be bounded.
    pub fn get_or_compute(&mut self, key: u64, certified: bool, compute: impl FnOnce() -> V) -> V {
        self.get_or_compute_weighed(key, certified, compute, |_| 0)
            .0
    }

    /// [`MemoTable::get_or_compute`] with an explicit per-entry weight
    /// (charged against the byte budget) and the probe outcome returned.
    ///
    /// `weigh` runs only on a miss, after `compute`, and should return the
    /// payload bytes the resident value pins (for zero-copy payloads: the
    /// bytes of the shared buffers the entry keeps alive).
    pub fn get_or_compute_weighed(
        &mut self,
        key: u64,
        certified: bool,
        compute: impl FnOnce() -> V,
        weigh: impl FnOnce(&V) -> u64,
    ) -> (V, Probe) {
        if !certified {
            self.stats.bypasses += 1;
            return (compute(), Probe::Bypass);
        }
        if let Some(v) = self.touch(key) {
            return (v, Probe::Hit);
        }
        let v = compute();
        let weight = weigh(&v);
        self.admit(key, v.clone(), weight);
        (v, Probe::Miss)
    }

    /// Serve a resident `key`, counting a hit and refreshing its LRU slot.
    fn touch(&mut self, key: u64) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&key)?;
        e.last_used = tick;
        self.stats.hits += 1;
        Some(e.value.clone())
    }

    /// Admit a computed value, counting a miss and evicting LRU entries
    /// past the budget. A concurrent admission that lost the race (the key
    /// is already resident) still counts the miss — it did compute — but
    /// keeps the incumbent entry, whose value is bit-identical under the
    /// determinism contract.
    fn admit(&mut self, key: u64, value: V, weight: u64) {
        self.stats.misses += 1;
        if self.entries.contains_key(&key) {
            return;
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                value,
                weight,
                last_used: self.tick,
            },
        );
        self.resident_bytes += weight;
        if let Some(budget) = self.budget {
            while self.resident_bytes > budget {
                let lru = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k);
                // The just-admitted entry holds the newest tick; reaching
                // it means nothing older is left to evict.
                match lru {
                    Some(k) if k != key => {
                        let evicted = self.entries.remove(&k).expect("lru key came from this map");
                        self.resident_bytes -= evicted.weight;
                        self.stats.evictions += 1;
                        self.stats.evicted_bytes += evicted.weight;
                    }
                    _ => break,
                }
            }
        }
    }

    /// Evict least-recently-used entries until at least `bytes` of
    /// declared weight are released (or the table is empty); returns the
    /// weight actually released. This is the memory-governor valve entry
    /// point: under pressure the resident query service drops cache
    /// entries — cheap to recompute, and their payload `Arc`s may be the
    /// pins keeping kernel chunks spillable — before any chunk pays for
    /// spill I/O. Works on unbounded tables too.
    pub fn evict_bytes(&mut self, bytes: u64) -> u64 {
        let mut freed = 0u64;
        while freed < bytes {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(k) = lru else { break };
            let evicted = self.entries.remove(&k).expect("lru key came from this map");
            self.resident_bytes -= evicted.weight;
            self.stats.evictions += 1;
            self.stats.evicted_bytes += evicted.weight;
            freed += evicted.weight;
        }
        freed
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Total declared weight of the resident entries.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// The byte budget, when one is set.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }
}

/// A [`MemoTable`] behind a poisoning-safe mutex, probed through `&self`.
///
/// This is the process-wide result cache of the resident query service:
/// many concurrent requests share one table. Locking is recovery-first —
/// a panic while the lock was held poisons the mutex, and every later
/// probe claims the inner value anyway (`PoisonError::into_inner`): the
/// table's state is a plain map plus counters, valid after any partial
/// update, and serving a possibly-stale LRU tick is strictly better than
/// wedging the whole service.
#[derive(Debug, Default)]
pub struct SharedMemoTable<V> {
    inner: Mutex<MemoTable<V>>,
}

impl<V: Clone> SharedMemoTable<V> {
    /// An empty, unbounded shared table.
    pub fn new() -> SharedMemoTable<V> {
        SharedMemoTable {
            inner: Mutex::new(MemoTable::new()),
        }
    }

    /// An empty shared table with an LRU byte budget.
    pub fn with_budget(budget_bytes: u64) -> SharedMemoTable<V> {
        SharedMemoTable {
            inner: Mutex::new(MemoTable::with_budget(budget_bytes)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MemoTable<V>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serve `key` or compute it, stating certification — the shared-table
    /// form of [`MemoTable::get_or_compute_weighed`].
    ///
    /// `compute` (and `weigh`) run with the lock **released**, so one
    /// cold key never serializes the whole service behind its recompute.
    /// Two threads racing the same cold key may therefore both compute;
    /// both count as misses, the first admission wins residency, and the
    /// determinism contract makes the two values bit-identical.
    pub fn get_or_compute(
        &self,
        key: u64,
        certified: bool,
        compute: impl FnOnce() -> V,
        weigh: impl FnOnce(&V) -> u64,
    ) -> (V, Probe) {
        if !certified {
            self.lock().stats.bypasses += 1;
            return (compute(), Probe::Bypass);
        }
        if let Some(v) = self.lock().touch(key) {
            return (v, Probe::Hit);
        }
        let v = compute();
        let weight = weigh(&v);
        self.lock().admit(key, v.clone(), weight);
        (v, Probe::Miss)
    }

    /// Evict LRU entries until `bytes` of weight are released — the
    /// shared-table form of [`MemoTable::evict_bytes`], shaped to back a
    /// [`marray::register_valve`](marray) callback.
    pub fn evict_bytes(&self, bytes: u64) -> u64 {
        self.lock().evict_bytes(bytes)
    }

    /// Whether `key` is resident right now.
    pub fn contains(&self, key: u64) -> bool {
        self.lock().contains(key)
    }

    /// Number of resident entries right now.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is cached right now.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> MemoStats {
        self.lock().stats()
    }

    /// Total declared weight of the resident entries right now.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_bypass_accounting() {
        let mut t: MemoTable<u64> = MemoTable::new();
        assert_eq!(t.get_or_compute(7, true, || 42), 42);
        assert_eq!(t.get_or_compute(7, true, || unreachable!()), 42);
        assert_eq!(t.get_or_compute(9, false, || 5), 5);
        assert_eq!(t.get_or_compute(9, false, || 6), 6); // recomputed
        assert!(!t.contains(9));
        assert_eq!(
            t.stats(),
            MemoStats {
                hits: 1,
                misses: 1,
                bypasses: 2,
                ..MemoStats::default()
            }
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn uncertified_probe_cannot_poison_a_certified_key() {
        let mut t: MemoTable<&'static str> = MemoTable::new();
        assert_eq!(t.get_or_compute(1, false, || "unsound"), "unsound");
        // The same fingerprint probed with a certificate sees a cold
        // table, not the unsound value.
        assert_eq!(t.get_or_compute(1, true, || "sound"), "sound");
        assert_eq!(t.get_or_compute(1, true, || unreachable!()), "sound");
    }

    #[test]
    fn probe_outcomes_are_reported() {
        let mut t: MemoTable<u32> = MemoTable::new();
        let w = |_: &u32| 4;
        assert_eq!(t.get_or_compute_weighed(1, true, || 10, w).1, Probe::Miss);
        assert_eq!(t.get_or_compute_weighed(1, true, || 10, w).1, Probe::Hit);
        assert_eq!(
            t.get_or_compute_weighed(2, false, || 20, w).1,
            Probe::Bypass
        );
        assert_eq!(t.resident_bytes(), 4);
    }

    #[test]
    fn lru_budget_evicts_oldest_and_counts_stats() {
        // Budget of 10 bytes, entries of 4: the third admission must evict
        // the least-recently-used entry, which a preceding hit has moved
        // away from the insertion order.
        let mut t: MemoTable<u64> = MemoTable::with_budget(10);
        let w = |_: &u64| 4;
        t.get_or_compute_weighed(1, true, || 100, w);
        t.get_or_compute_weighed(2, true, || 200, w);
        t.get_or_compute_weighed(1, true, || unreachable!(), w); // refresh key 1
        t.get_or_compute_weighed(3, true, || 300, w);
        assert!(t.contains(1), "recently-touched entry survives");
        assert!(!t.contains(2), "LRU entry is evicted");
        assert!(t.contains(3));
        assert_eq!(t.resident_bytes(), 8);
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 3));
        assert_eq!((s.evictions, s.evicted_bytes), (1, 4));
        // The evicted key recomputes and re-admits: capacity, not soundness.
        assert_eq!(
            t.get_or_compute_weighed(2, true, || 201, w),
            (201, Probe::Miss)
        );
    }

    #[test]
    fn oversized_entry_is_admitted_then_alone() {
        let mut t: MemoTable<u8> = MemoTable::with_budget(3);
        let w = |_: &u8| 2;
        t.get_or_compute_weighed(1, true, || 1, w);
        // 9 bytes > budget: everything else goes, the new entry stays.
        t.get_or_compute_weighed(2, true, || 2, |_| 9);
        assert!(!t.contains(1));
        assert!(t.contains(2));
        assert_eq!(t.resident_bytes(), 9);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn zero_weight_entries_never_trip_the_budget() {
        let mut t: MemoTable<u8> = MemoTable::with_budget(1);
        for k in 0..10 {
            t.get_or_compute(k, true, || k as u8);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.stats().evictions, 0);
    }

    #[test]
    fn shared_table_serves_hits_across_threads() {
        let t: SharedMemoTable<u64> = SharedMemoTable::new();
        let (v, p) = t.get_or_compute(5, true, || 55, |_| 8);
        assert_eq!((v, p), (55, Probe::Miss));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let (v, p) = t.get_or_compute(5, true, || unreachable!(), |_| 8);
                    assert_eq!((v, p), (55, Probe::Hit));
                });
            }
        });
        let st = t.stats();
        assert_eq!((st.hits, st.misses, st.bypasses), (4, 1, 0));
        assert_eq!(t.resident_bytes(), 8);
    }

    #[test]
    fn shared_table_racing_cold_probes_agree() {
        // Every thread races the same cold key: each probe either hits or
        // computes the same deterministic value; residency is exactly one
        // entry and hits+misses covers all probes.
        let t: SharedMemoTable<u64> = SharedMemoTable::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (v, _) = t.get_or_compute(1, true, || 42, |_| 8);
                    assert_eq!(v, 42);
                });
            }
        });
        let st = t.stats();
        assert_eq!(st.hits + st.misses, 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.resident_bytes(), 8);
    }

    #[test]
    fn evict_bytes_drains_lru_first_and_reports_freed_weight() {
        let t: SharedMemoTable<u64> = SharedMemoTable::new();
        t.get_or_compute(1, true, || 10, |_| 4);
        t.get_or_compute(2, true, || 20, |_| 4);
        t.get_or_compute(1, true, || unreachable!(), |_| 4); // refresh 1
        assert_eq!(t.evict_bytes(1), 4, "one LRU entry covers the request");
        assert!(!t.contains(2), "LRU entry goes first");
        assert!(t.contains(1));
        // Asking for more than is resident frees what there is.
        assert_eq!(t.evict_bytes(1 << 20), 4);
        assert!(t.is_empty());
        assert_eq!(t.evict_bytes(1), 0, "empty table frees nothing");
        let s = t.stats();
        assert_eq!((s.evictions, s.evicted_bytes), (2, 8));
    }

    #[test]
    fn shared_table_entry_larger_than_budget_is_admitted_alone() {
        // The just-computed entry is always servable once, even when its
        // weight alone exceeds the budget — everything older goes.
        let t: SharedMemoTable<u64> = SharedMemoTable::with_budget(16);
        t.get_or_compute(1, true, || 10, |_| 8);
        t.get_or_compute(2, true, || 20, |_| 8);
        t.get_or_compute(3, true, || 30, |_| 64);
        assert!(!t.contains(1));
        assert!(!t.contains(2));
        assert!(t.contains(3), "oversized entry stays resident");
        assert_eq!(t.resident_bytes(), 64);
        let s = t.stats();
        assert_eq!((s.evictions, s.evicted_bytes), (2, 16));
    }

    #[test]
    fn shared_table_exact_fit_never_evicts() {
        // resident == budget is within budget: eviction triggers strictly
        // past the boundary, so an exact fill keeps every entry.
        let t: SharedMemoTable<u64> = SharedMemoTable::with_budget(8);
        t.get_or_compute(1, true, || 10, |_| 4);
        t.get_or_compute(2, true, || 20, |_| 4);
        assert_eq!(t.resident_bytes(), 8);
        assert_eq!(t.stats().evictions, 0);
        // One more byte crosses the boundary and evicts exactly the LRU.
        t.get_or_compute(3, true, || 30, |_| 1);
        assert!(!t.contains(1), "oldest entry pays for the overflow");
        assert!(t.contains(2));
        assert!(t.contains(3));
        assert_eq!(t.resident_bytes(), 5);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn shared_table_repeated_hits_protect_an_old_entry() {
        // Key 1 is admitted first but hit repeatedly; the untouched key 2
        // is the true LRU when key 4 needs room, and eviction follows use
        // order, not insertion order.
        let t: SharedMemoTable<u64> = SharedMemoTable::with_budget(12);
        t.get_or_compute(1, true, || 10, |_| 4);
        t.get_or_compute(2, true, || 20, |_| 4);
        t.get_or_compute(3, true, || 30, |_| 4);
        for _ in 0..3 {
            let (v, p) = t.get_or_compute(1, true, || unreachable!(), |_| 4);
            assert_eq!((v, p), (10, Probe::Hit));
        }
        t.get_or_compute(4, true, || 40, |_| 4);
        assert!(t.contains(1), "repeatedly-hit entry survives");
        assert!(!t.contains(2), "least-recently-used entry is evicted");
        assert!(t.contains(3));
        assert!(t.contains(4));
        assert_eq!(t.resident_bytes(), 12);
    }

    #[test]
    fn shared_table_budget_accounting_survives_a_poisoned_lock() {
        // Recovery-first locking must leave the budget machinery working:
        // admissions after a poisoning panic still evict correctly.
        let t: SharedMemoTable<u64> = SharedMemoTable::with_budget(8);
        t.get_or_compute(1, true, || 10, |_| 4);
        let r = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = t.inner.lock().unwrap();
                panic!("poison the table lock");
            })
            .join()
        });
        assert!(r.is_err(), "the poisoning thread panicked");
        t.get_or_compute(2, true, || 20, |_| 4);
        t.get_or_compute(3, true, || 30, |_| 4);
        assert!(!t.contains(1), "post-poison admission still evicts LRU");
        assert!(t.contains(2));
        assert!(t.contains(3));
        assert_eq!(t.resident_bytes(), 8);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn shared_table_survives_a_poisoned_lock() {
        let t: SharedMemoTable<u64> = SharedMemoTable::new();
        t.get_or_compute(1, true, || 10, |_| 0);
        // Poison the mutex: panic while holding the guard.
        let r = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = t.inner.lock().unwrap();
                panic!("poison the table lock");
            })
            .join()
        });
        assert!(r.is_err(), "the poisoning thread panicked");
        // Probes keep working: recovery-first locking claims the state.
        assert_eq!(
            t.get_or_compute(1, true, || unreachable!(), |_| 0),
            (10, Probe::Hit)
        );
        assert_eq!(t.stats().hits, 1);
    }
}
