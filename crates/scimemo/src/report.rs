//! The `scimemo/v2` cacheability report.
//!
//! One report covers a whole sweep: the workspace purity summary, one
//! entry per shipped config (with per-plan certification rollups and
//! deduplicated rejection reasons), the deliberately-unsafe fixtures
//! that prove the gate rejects what it must, and — since v2 — the
//! [`StatsBlock`] surfacing the [`MemoStats`] traffic counters of a
//! [`crate::MemoTable`] actually exercised over the sweep's certified
//! fingerprints (the counters existed since v1 but were write-only:
//! nothing ever read them back out). The JSON is emitted with sorted keys
//! and stable ordering throughout, so a byte-level diff (and the
//! cross-process re-execution test) is meaningful: any schema or verdict
//! drift shows up as a diff, not silently.

use std::collections::BTreeMap;

use crate::{Certification, MemoStats};

/// Schema tag written into every report. Bumped v1 → v2 when the
/// `memo_stats` block was added (hit/miss/bypass/eviction counters were
/// previously recorded but never serialized anywhere).
pub const SCHEMA: &str = "scimemo/v2";

/// Certification of one shipped config.
#[derive(Debug, Clone)]
pub struct ConfigReport {
    /// Config name as `scibench lint` prints it.
    pub name: String,
    /// Pipeline family (`neuro`, `astro`, `ingest`, `steps`).
    pub family: String,
    /// Engine name.
    pub engine: String,
    /// The per-node decisions.
    pub cert: Certification,
}

/// Certification of one deliberately-unsafe fixture plan, expected to be
/// rejected.
#[derive(Debug, Clone)]
pub struct FixtureReport {
    /// Fixture name.
    pub name: String,
    /// The per-node decisions (at least one rejection expected).
    pub cert: Certification,
}

/// Traffic counters of a memo table exercised during the sweep, plus its
/// residency at the end — the observable half of cache efficacy.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsBlock {
    /// Hit/miss/bypass/eviction counters.
    pub stats: MemoStats,
    /// Entries resident when the sweep finished.
    pub resident_entries: usize,
    /// Declared bytes resident when the sweep finished.
    pub resident_bytes: u64,
}

/// A full sweep: purity summary + configs + fixtures + cache traffic.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Workspace purity summary (level name → function count).
    pub purity: BTreeMap<String, usize>,
    /// One entry per swept config, in sweep order.
    pub configs: Vec<ConfigReport>,
    /// Unsafe fixtures, in sweep order.
    pub fixtures: Vec<FixtureReport>,
    /// Memo-table traffic over the sweep's fingerprints, when measured.
    pub memo_stats: Option<StatsBlock>,
}

/// One label's rollup within a config: `(class, tasks, certified)`.
type LabelRollup = (String, usize, usize);

fn rollup(cert: &Certification) -> BTreeMap<String, LabelRollup> {
    let mut out: BTreeMap<String, LabelRollup> = BTreeMap::new();
    for n in &cert.nodes {
        let e = out
            .entry(n.label.to_string())
            .or_insert_with(|| (n.class.name().to_string(), 0, 0));
        e.1 += 1;
        if n.certified {
            e.2 += 1;
        }
    }
    out
}

/// Rejections deduplicated by label (first occurrence wins; decisions are
/// in task order, so this is deterministic).
fn rejections(cert: &Certification) -> BTreeMap<String, (String, Vec<String>)> {
    let mut out = BTreeMap::new();
    for n in cert.rejections() {
        out.entry(n.label.to_string())
            .or_insert_with(|| (n.reason.clone(), n.witness.clone()));
    }
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

impl Report {
    /// Tasks and certified-task counts per family, for acceptance checks:
    /// every family must certify at least one node set.
    pub fn family_certified(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for c in &self.configs {
            let e = out.entry(c.family.clone()).or_insert((0, 0));
            e.0 += c.cert.nodes.len();
            e.1 += c.cert.certified_count();
        }
        out
    }

    /// Render the report as deterministic `scimemo/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));

        s.push_str("  \"purity\": {");
        let purity: Vec<String> = self
            .purity
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", esc(k)))
            .collect();
        s.push_str(&purity.join(", "));
        s.push_str("},\n");

        s.push_str("  \"configs\": [\n");
        for (i, c) in self.configs.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!(
                "\"name\": \"{}\", \"family\": \"{}\", \"engine\": \"{}\", ",
                esc(&c.name),
                esc(&c.family),
                esc(&c.engine)
            ));
            s.push_str(&format!(
                "\"graph_fingerprint\": \"{:016x}\", ",
                c.cert.graph_fingerprint
            ));
            let (tasks, certified) = (c.cert.nodes.len(), c.cert.certified_count());
            let rejected = c.cert.rejections().count();
            s.push_str(&format!(
                "\"tasks\": {tasks}, \"certified\": {certified}, \"rejected\": {rejected}"
            ));
            s.push_str(", \"labels\": {");
            let labels: Vec<String> = rollup(&c.cert)
                .iter()
                .map(|(label, (class, n, cert))| {
                    format!(
                        "\"{}\": {{\"class\": \"{class}\", \"tasks\": {n}, \"certified\": {cert}}}",
                        esc(label)
                    )
                })
                .collect();
            s.push_str(&labels.join(", "));
            s.push('}');
            let rej = rejections(&c.cert);
            if !rej.is_empty() {
                s.push_str(", \"rejections\": {");
                let rs: Vec<String> = rej
                    .iter()
                    .map(|(label, (reason, witness))| {
                        format!(
                            "\"{}\": {{\"reason\": \"{}\", \"witness\": {}}}",
                            esc(label),
                            esc(reason),
                            json_str_list(witness)
                        )
                    })
                    .collect();
                s.push_str(&rs.join(", "));
                s.push('}');
            }
            s.push('}');
            if i + 1 < self.configs.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");

        s.push_str("  \"fixtures\": [\n");
        for (i, f) in self.fixtures.iter().enumerate() {
            let rej = rejections(&f.cert);
            s.push_str("    {");
            s.push_str(&format!(
                "\"name\": \"{}\", \"tasks\": {}, \"certified\": {}, \"rejections\": {{",
                esc(&f.name),
                f.cert.nodes.len(),
                f.cert.certified_count()
            ));
            let rs: Vec<String> = rej
                .iter()
                .map(|(label, (reason, witness))| {
                    format!(
                        "\"{}\": {{\"reason\": \"{}\", \"witness\": {}}}",
                        esc(label),
                        esc(reason),
                        json_str_list(witness)
                    )
                })
                .collect();
            s.push_str(&rs.join(", "));
            s.push_str("}}");
            if i + 1 < self.fixtures.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");

        if let Some(m) = &self.memo_stats {
            s.push_str(&format!(
                "  \"memo_stats\": {{\"hits\": {}, \"misses\": {}, \"bypasses\": {}, \
                 \"evictions\": {}, \"evicted_bytes\": {}, \"resident_entries\": {}, \
                 \"resident_bytes\": {}}},\n",
                m.stats.hits,
                m.stats.misses,
                m.stats.bypasses,
                m.stats.evictions,
                m.stats.evicted_bytes,
                m.resident_entries,
                m.resident_bytes
            ));
        }

        s.push_str("  \"families\": {");
        let fams: Vec<String> = self
            .family_certified()
            .iter()
            .map(|(fam, (tasks, cert))| {
                format!(
                    "\"{}\": {{\"tasks\": {tasks}, \"certified\": {cert}}}",
                    esc(fam)
                )
            })
            .collect();
        s.push_str(&fams.join(", "));
        s.push_str("}\n");

        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeClass, NodeDecision};

    fn decision(label: &'static str, certified: bool, class: NodeClass) -> NodeDecision {
        NodeDecision {
            task: 0,
            label,
            fingerprint: 0xabcd,
            class,
            sound: certified,
            certified,
            reason: if certified {
                String::new()
            } else {
                "kernel `x` is ambient_read via env::var".into()
            },
            witness: if certified {
                Vec::new()
            } else {
                vec!["x (crates/x/src/lib.rs:1)".into()]
            },
        }
    }

    fn sample() -> Report {
        let mut purity = BTreeMap::new();
        purity.insert("pure".to_string(), 2);
        purity.insert("det_impure".to_string(), 1);
        Report {
            purity,
            configs: vec![ConfigReport {
                name: "neuro-spark-1".into(),
                family: "neuro".into(),
                engine: "Spark".into(),
                cert: Certification {
                    nodes: vec![
                        decision("spark:ingest", true, NodeClass::Source),
                        decision("spark:fit", true, NodeClass::Kernel),
                    ],
                    graph_fingerprint: 0x1234,
                },
            }],
            fixtures: vec![FixtureReport {
                name: "fixture-ambient".into(),
                cert: Certification {
                    nodes: vec![decision("fixture:dirty", false, NodeClass::Kernel)],
                    graph_fingerprint: 0x5678,
                },
            }],
            memo_stats: Some(StatsBlock {
                stats: MemoStats {
                    hits: 3,
                    misses: 2,
                    bypasses: 1,
                    evictions: 0,
                    evicted_bytes: 0,
                },
                resident_entries: 2,
                resident_bytes: 16,
            }),
        }
    }

    #[test]
    fn json_carries_schema_and_is_deterministic() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"scimemo/v2\""));
        assert!(a.contains("\"graph_fingerprint\": \"0000000000001234\""));
        assert!(a.contains("\"fixture:dirty\""));
        assert!(a.contains("ambient_read"));
        assert!(a.contains(
            "\"memo_stats\": {\"hits\": 3, \"misses\": 2, \"bypasses\": 1, \"evictions\": 0, \
             \"evicted_bytes\": 0, \"resident_entries\": 2, \"resident_bytes\": 16}"
        ));
    }

    #[test]
    fn memo_stats_block_is_optional() {
        let mut r = sample();
        r.memo_stats = None;
        assert!(!r.to_json().contains("\"memo_stats\""));
    }

    #[test]
    fn family_rollup_counts_tasks_and_certified() {
        let r = sample();
        let fams = r.family_certified();
        assert_eq!(fams.get("neuro"), Some(&(2, 2)));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
