//! Behavioural tests of the delayed-graph engine: wide fan-in/out graphs,
//! barrier accounting, large-graph stress, and the Figure-8 idiom.

use engine_taskgraph::{DaskClient, Delayed};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn figure8_idiom_download_filter_mean_mask() {
    // The paper's Figure 8 shape: per-subject chains with a barrier that
    // forces downloads, then a second graph over blocks.
    let client = DaskClient::new(4);
    let subject_ids = [0u32, 1, 2];
    let downloads: Vec<Delayed<Vec<f64>>> = subject_ids
        .iter()
        .map(|&id| client.delayed(move || (0..32).map(|i| (id * 100 + i) as f64).collect()))
        .collect();
    // Barrier: "len(data[id].vols.result())".
    let lens: Vec<usize> = downloads
        .iter()
        .map(|&d| client.result(client.delayed_map(d, |v: &Vec<f64>| v.len())))
        .collect();
    assert_eq!(lens, vec![32, 32, 32]);
    // Per-block means, reassembled, thresholded.
    for &d in &downloads {
        let blocks: Vec<Delayed<f64>> = (0..4)
            .map(|b| {
                client.delayed_map(d, move |v: &Vec<f64>| {
                    v[b * 8..(b + 1) * 8].iter().sum::<f64>() / 8.0
                })
            })
            .collect();
        let mask = client.delayed_many(&blocks, |means: &[&f64]| {
            let grand = means.iter().copied().sum::<f64>() / means.len() as f64;
            means.iter().map(|&&m| m > grand).collect::<Vec<bool>>()
        });
        let bits = client.result(mask);
        assert_eq!(bits.len(), 4);
        assert_eq!(
            bits.iter().filter(|&&b| b).count(),
            2,
            "half above the grand mean"
        );
    }
    assert!(
        client.barrier_count() >= 4,
        "explicit barriers were counted"
    );
}

#[test]
fn thousand_task_graph_executes_once_each() {
    let client = DaskClient::new(8);
    let calls = Arc::new(AtomicUsize::new(0));
    let leaves: Vec<Delayed<u64>> = (0..500)
        .map(|i| {
            let c = Arc::clone(&calls);
            client.delayed(move || {
                c.fetch_add(1, Ordering::SeqCst);
                i as u64
            })
        })
        .collect();
    // Two layers of pairwise sums.
    let pairs: Vec<Delayed<u64>> = leaves
        .chunks(2)
        .map(|pair| client.delayed_zip(pair[0], pair[1], |a, b| a + b))
        .collect();
    let total = client.delayed_many(&pairs, |vs: &[&u64]| vs.iter().copied().sum::<u64>());
    assert_eq!(client.result(total), (0..500).sum::<u64>());
    assert_eq!(
        calls.load(Ordering::SeqCst),
        500,
        "each leaf ran exactly once"
    );
    assert_eq!(client.graph_size(), 500 + 250 + 1);
}

#[test]
fn partial_barriers_only_run_needed_subgraph() {
    let client = DaskClient::new(2);
    let ran_a = Arc::new(AtomicUsize::new(0));
    let ran_b = Arc::new(AtomicUsize::new(0));
    let (ca, cb) = (Arc::clone(&ran_a), Arc::clone(&ran_b));
    let a = client.delayed(move || {
        ca.fetch_add(1, Ordering::SeqCst);
        1u8
    });
    let _b = client.delayed(move || {
        cb.fetch_add(1, Ordering::SeqCst);
        2u8
    });
    client.result(a);
    assert_eq!(ran_a.load(Ordering::SeqCst), 1);
    assert_eq!(ran_b.load(Ordering::SeqCst), 0, "unneeded branch untouched");
}

#[test]
fn single_worker_still_completes_wide_graphs() {
    let client = DaskClient::new(1);
    let xs: Vec<Delayed<usize>> = (0..64).map(|i| client.delayed(move || i)).collect();
    let sum = client.delayed_many(&xs, |vs: &[&usize]| vs.iter().copied().sum::<usize>());
    assert_eq!(client.result(sum), (0..64).sum::<usize>());
}

#[test]
fn compute_many_returns_in_target_order() {
    let client = DaskClient::new(4);
    let xs: Vec<Delayed<usize>> = (0..10).map(|i| client.delayed(move || 9 - i)).collect();
    let vals = client.compute_many(&xs);
    assert_eq!(vals, (0..10).rev().collect::<Vec<_>>());
}
