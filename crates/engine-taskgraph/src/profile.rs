//! Architectural constants used when lowering delayed graphs onto the
//! cluster simulator.

/// The Dask-analog execution profile.
///
/// * `scheduler_startup` — the large fixed cost per compute barrier the
///   paper identifies ("Dask's efficiency increase is most pronounced,
///   indicating that the tool has the largest start-up overhead"; 60%
///   slower than Spark/Myria for a single subject).
/// * `per_task_overhead` — per-task scheduling cost of the dynamic
///   scheduler.
/// * `steal_cost` — cost of moving a task off its data-local node;
///   "scheduling overhead makes Dask less efficient as cluster sizes
///   increase, as the scheduler attempts to move tasks among different
///   machines via aggressive work stealing".
/// * `pipelines_across_steps` — each subject's data stays on one node, so
///   the next step starts as soon as that subject finishes the previous
///   one: no cross-subject barrier, no shuffle (the paper's explanation of
///   Dask's up-to-14% edge at 25 subjects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskGraphEngineProfile {
    /// Fixed cost per compute barrier (s).
    pub scheduler_startup: f64,
    /// Dispatch overhead per task (s).
    pub per_task_overhead: f64,
    /// Extra cost per stolen (non-local) task (s).
    pub steal_cost: f64,
    /// Whether consecutive pipeline steps fuse per data item.
    pub pipelines_across_steps: bool,
}

impl Default for TaskGraphEngineProfile {
    fn default() -> Self {
        TaskGraphEngineProfile {
            scheduler_startup: 215.0,
            per_task_overhead: 0.012,
            steal_cost: 0.35,
            pipelines_across_steps: true,
        }
    }
}

impl TaskGraphEngineProfile {
    /// The statically checkable invariants of this engine's lowerings,
    /// consumed by [`plancheck::check`]. When steps pipeline per item,
    /// producers declare full-size outputs that consumers slice
    /// per-transfer (so producer-side amplification accounting is off)
    /// and no global barrier may appear in a lowering at all.
    pub fn invariants(&self) -> plancheck::InvariantProfile {
        plancheck::InvariantProfile {
            transfer_slices: self.pipelines_across_steps,
            barriers: if self.pipelines_across_steps {
                plancheck::BarrierDiscipline::Forbidden
            } else {
                plancheck::BarrierDiscipline::Free
            },
            ..plancheck::InvariantProfile::new("Dask")
        }
    }

    /// What each Dask-analog task label executes, for the scimemo
    /// cacheability certifier (shared `astro:*`/`ingest:*`/step labels
    /// live in core's table).
    pub fn op_bindings(&self) -> &'static [plancheck::OpBinding] {
        DASK_OPS
    }
}

const DASK_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    [
        OpBinding::new("dask:scheduler-startup", OpClass::Infra),
        OpBinding::new("dask:download", OpClass::Source),
        OpBinding::new("dask:filter", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("dask:mean", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("dask:mask", OpClass::Kernel(&["median_otsu"])),
        OpBinding::new("dask:denoise", OpClass::Kernel(&["nlmeans3d"])),
        OpBinding::new("dask:fit", OpClass::Kernel(&["fit_dtm_volume"])),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_dominates_small_jobs() {
        let p = TaskGraphEngineProfile::default();
        assert!(p.scheduler_startup > 1000.0 * p.per_task_overhead);
        assert!(p.pipelines_across_steps);
    }
}
