#![warn(missing_docs)]

//! # engine-taskgraph — a delayed task-graph parallel library (Dask analog)
//!
//! Reproduces the architectural properties of Dask the paper's analysis
//! rests on:
//!
//! * **`delayed` compute graphs over plain values** — no collection
//!   abstraction; users wrap ordinary functions with
//!   [`DaskClient::delayed`] / [`DaskClient::delayed_map`] and chain them
//!   freely (the paper's Figure 8 style).
//! * **Explicit barriers** — nothing runs until [`DaskClient::result`]
//!   (Dask's `.result()`/`.compute()`), which executes the needed subgraph
//!   and blocks. Users must reason about where to place these barriers.
//! * **No persistence layer** — computed values stay in the graph where
//!   they were produced; there is no storage/caching service.
//! * **Dynamic scheduling with work stealing** — the eager executor drains
//!   a shared ready queue with a thread pool (any idle worker takes any
//!   ready task); the cost model charges Dask's aggressive stealing via
//!   [`TaskGraphEngineProfile::steal_cost`], which erodes efficiency at
//!   larger cluster sizes (Figure 10g).
//! * **Manual data placement for ingest** — the scheduler does not know
//!   download sizes, so users assign subjects to machines explicitly
//!   (Figure 11's flat Dask ingest curve); see the harness's ingest
//!   experiment.
//!
//! ```
//! use engine_taskgraph::DaskClient;
//!
//! let client = DaskClient::new(4);
//! let data = client.delayed(|| vec![1.0f64, 2.0, 3.0]);
//! let mean = client.delayed_map(data, |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64);
//! assert_eq!(client.result(mean), 2.0); // .result() is the barrier
//! ```

mod client;
mod profile;

pub use client::{DaskClient, Delayed};
pub use profile::TaskGraphEngineProfile;
