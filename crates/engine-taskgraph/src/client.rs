//! The delayed-graph builder and its work-stealing executor.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard};

type AnyValue = Arc<dyn Any + Send + Sync>;
type NodeFn = Box<dyn FnOnce(&[AnyValue]) -> AnyValue + Send>;

struct Node {
    deps: Vec<usize>,
    func: Option<NodeFn>,
    result: Option<AnyValue>,
}

/// A handle to a lazily computed value of type `T`.
///
/// Cheap to copy; tied to the [`DaskClient`] that created it.
pub struct Delayed<T> {
    node: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Delayed<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Delayed<T> {}

/// The distributed scheduler client.
///
/// Builds compute graphs and executes them on demand with a pool of
/// `workers` threads draining a shared ready queue (dynamic load balancing —
/// idle workers take whatever is ready, Dask's work-stealing behaviour).
pub struct DaskClient {
    workers: usize,
    graph: Mutex<Vec<Node>>,
    barriers: Mutex<usize>,
}

/// Downcast a stored value to its static type — the simulated Dask engine's
/// dynamic-typing boundary. A mismatch means the graph was built with
/// inconsistent types, which the real engine also surfaces as a task error;
/// this helper is the single sanctioned panic point for it.
fn cast<A: 'static>(value: &AnyValue) -> &A {
    // scilint: allow(F001, delayed-graph type mismatch is a graph-construction bug; the engine aborts the computation like Dask surfaces a task exception)
    value.downcast_ref::<A>().expect("delayed type mismatch")
}

impl DaskClient {
    /// The graph under its lock. Poisoning means a worker panicked holding
    /// it; the scheduler aborts rather than schedule on a torn graph — the
    /// single sanctioned panic point for graph access.
    fn graph(&self) -> MutexGuard<'_, Vec<Node>> {
        // scilint: allow(F001, poisoned graph lock means a worker already panicked; aborting the scheduler is the engine contract)
        self.graph.lock().expect("graph lock poisoned")
    }

    /// The barrier counter under its lock; see [`DaskClient::graph`] for the
    /// poisoning contract.
    fn barrier_counter(&self) -> MutexGuard<'_, usize> {
        // scilint: allow(F001, poisoned barrier lock means a worker already panicked; aborting the scheduler is the engine contract)
        self.barriers.lock().expect("barrier lock poisoned")
    }

    /// Connect with the given worker-thread count.
    pub fn new(workers: usize) -> DaskClient {
        DaskClient {
            workers: workers.max(1),
            graph: Mutex::new(Vec::new()),
            barriers: Mutex::new(0),
        }
    }

    fn push_node<T: Send + Sync + 'static>(
        &self,
        deps: Vec<usize>,
        func: impl FnOnce(&[AnyValue]) -> T + Send + 'static,
    ) -> Delayed<T> {
        let mut graph = self.graph();
        let id = graph.len();
        graph.push(Node {
            deps,
            func: Some(Box::new(move |args| Arc::new(func(args)) as AnyValue)),
            result: None,
        });
        Delayed {
            node: id,
            _marker: PhantomData,
        }
    }

    /// `delayed(f)()` — a leaf computation.
    pub fn delayed<T: Send + Sync + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Delayed<T> {
        self.push_node(vec![], move |_| f())
    }

    /// `delayed(f)(x)` — a unary transformation of another delayed value.
    pub fn delayed_map<A, T>(
        &self,
        input: Delayed<A>,
        f: impl FnOnce(&A) -> T + Send + 'static,
    ) -> Delayed<T>
    where
        A: Send + Sync + 'static,
        T: Send + Sync + 'static,
    {
        self.push_node(vec![input.node], move |args| {
            let a = cast::<A>(&args[0]);
            f(a)
        })
    }

    /// `delayed(f)(x, y)` — a binary combination.
    pub fn delayed_zip<A, B, T>(
        &self,
        left: Delayed<A>,
        right: Delayed<B>,
        f: impl FnOnce(&A, &B) -> T + Send + 'static,
    ) -> Delayed<T>
    where
        A: Send + Sync + 'static,
        B: Send + Sync + 'static,
        T: Send + Sync + 'static,
    {
        self.push_node(vec![left.node, right.node], move |args| {
            let a = cast::<A>(&args[0]);
            let b = cast::<B>(&args[1]);
            f(a, b)
        })
    }

    /// `delayed(f)(xs)` — combine many homogeneous delayed values
    /// (e.g. `reassemble(means)` on Figure 8's line 10).
    pub fn delayed_many<A, T>(
        &self,
        inputs: &[Delayed<A>],
        f: impl FnOnce(&[&A]) -> T + Send + 'static,
    ) -> Delayed<T>
    where
        A: Send + Sync + 'static,
        T: Send + Sync + 'static,
    {
        let deps: Vec<usize> = inputs.iter().map(|d| d.node).collect();
        self.push_node(deps, move |args| {
            let refs: Vec<&A> = args.iter().map(cast::<A>).collect();
            f(&refs)
        })
    }

    /// Execute the subgraph needed for `target` and return its value —
    /// Dask's `.result()`, a barrier.
    pub fn result<T: Clone + Send + Sync + 'static>(&self, target: Delayed<T>) -> T {
        self.execute(&[target.node]);
        let graph = self.graph();
        // scilint: allow(F001, the barrier above just executed the target; a missing result is a scheduler bug worth aborting on)
        cast::<T>(graph[target.node].result.as_ref().expect("executed"))
            // scilint: allow(C001, result handoff clones the stored value; NdArray payloads are refcount bumps)
            .clone()
    }

    /// Execute the subgraphs of several targets under one barrier.
    pub fn compute_many<T: Clone + Send + Sync + 'static>(&self, targets: &[Delayed<T>]) -> Vec<T> {
        self.execute(&targets.iter().map(|t| t.node).collect::<Vec<_>>());
        let graph = self.graph();
        targets
            .iter()
            .map(|t| {
                // scilint: allow(F001, the barrier above just executed every target; a missing result is a scheduler bug worth aborting on)
                cast::<T>(graph[t.node].result.as_ref().expect("executed"))
                    // scilint: allow(C001, result handoff clones the stored value; NdArray payloads are refcount bumps)
                    .clone()
            })
            .collect()
    }

    /// Number of barriers (`result` / `compute_many` calls) so far — the
    /// graph-construction discipline the paper highlights as Dask's main
    /// usability cost.
    pub fn barrier_count(&self) -> usize {
        *self.barrier_counter()
    }

    /// Number of graph nodes built so far.
    pub fn graph_size(&self) -> usize {
        self.graph().len()
    }

    /// Run the pending subgraph reachable from `targets`.
    ///
    /// The worker pool below is the simulated engine's own work-stealing
    /// executor (the paper's Dask analog), so its spawns and its
    /// poisoned-lock aborts are the engine boundary, not kernel code.
    // scilint: allow(F001, worker-pool lock poisoning and ran-twice/dep-done invariants abort the scheduler by design; TODO(flow): route through morsel pool once engines share it)
    // scilint: allow(F004, this scope.spawn IS the simulated Dask work-stealing pool, the engine's executor boundary)
    fn execute(&self, targets: &[usize]) {
        *self.barrier_counter() += 1;
        // Collect the incomplete subgraph.
        let mut needed: Vec<usize> = Vec::new();
        {
            let graph = self.graph();
            let mut stack: Vec<usize> = targets.to_vec();
            let mut seen = vec![false; graph.len()];
            while let Some(n) = stack.pop() {
                if seen[n] || graph[n].result.is_some() {
                    continue;
                }
                seen[n] = true;
                needed.push(n);
                stack.extend_from_slice(&graph[n].deps);
            }
        }
        if needed.is_empty() {
            return;
        }

        // Dependency counts within the pending set.
        let mut pending: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut dependents: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        {
            let graph = self.graph();
            for &n in &needed {
                let unmet = graph[n]
                    .deps
                    .iter()
                    .filter(|&&d| graph[d].result.is_none())
                    .count();
                pending.insert(n, unmet);
                for &d in &graph[n].deps {
                    if graph[d].result.is_none() {
                        dependents.entry(d).or_default().push(n);
                    }
                }
            }
        }

        struct Shared {
            queue: Mutex<(VecDeque<usize>, usize)>, // (ready, remaining)
            cv: Condvar,
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new((
                needed.iter().copied().filter(|n| pending[n] == 0).collect(),
                needed.len(),
            )),
            cv: Condvar::new(),
        });
        let pending = Arc::new(Mutex::new(pending));
        let dependents = Arc::new(dependents);

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(needed.len()) {
                let shared = Arc::clone(&shared);
                let pending = Arc::clone(&pending);
                let dependents = Arc::clone(&dependents);
                scope.spawn(move || loop {
                    // Steal the next ready task from the shared queue.
                    let task = {
                        let mut q = shared.queue.lock().expect("queue lock poisoned");
                        loop {
                            if q.1 == 0 {
                                shared.cv.notify_all();
                                return;
                            }
                            if let Some(t) = q.0.pop_front() {
                                break t;
                            }
                            q = shared.cv.wait(q).expect("queue lock poisoned");
                        }
                    };
                    // Take the function + argument snapshots under the lock,
                    // run outside it.
                    let (func, args) = {
                        let mut graph = self.graph();
                        let func = graph[task].func.take().expect("task ran twice");
                        let args: Vec<AnyValue> = graph[task]
                            .deps
                            .iter()
                            .map(|&d| Arc::clone(graph[d].result.as_ref().expect("dep done")))
                            .collect();
                        (func, args)
                    };
                    let value = func(&args);
                    {
                        let mut graph = self.graph();
                        graph[task].result = Some(value);
                    }
                    // Release dependents.
                    let mut newly_ready: Vec<usize> = Vec::new();
                    if let Some(deps) = dependents.get(&task) {
                        let mut p = pending.lock().expect("pending lock poisoned");
                        for &d in deps {
                            let c = p.get_mut(&d).expect("tracked");
                            *c -= 1;
                            if *c == 0 {
                                newly_ready.push(d);
                            }
                        }
                    }
                    {
                        let mut q = shared.queue.lock().expect("queue lock poisoned");
                        q.1 -= 1;
                        for d in newly_ready {
                            q.0.push_back(d);
                        }
                        shared.cv.notify_all();
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn leaf_and_map() {
        let client = DaskClient::new(4);
        let x = client.delayed(|| 21u64);
        let y = client.delayed_map(x, |v| v * 2);
        assert_eq!(client.result(y), 42);
    }

    #[test]
    fn zip_combines() {
        let client = DaskClient::new(2);
        let a = client.delayed(|| 3.0f64);
        let b = client.delayed(|| 4.0f64);
        let c = client.delayed_zip(a, b, |x, y| (x * x + y * y).sqrt());
        assert_eq!(client.result(c), 5.0);
    }

    #[test]
    fn many_combines_fanin() {
        let client = DaskClient::new(4);
        let parts: Vec<Delayed<u64>> = (0..10).map(|i| client.delayed(move || i as u64)).collect();
        let total = client.delayed_many(&parts, |vs| vs.iter().copied().sum::<u64>());
        assert_eq!(client.result(total), 45);
    }

    #[test]
    fn lazy_until_barrier() {
        let calls = Arc::new(AtomicUsize::new(0));
        let client = DaskClient::new(2);
        let c = Arc::clone(&calls);
        let x = client.delayed(move || {
            c.fetch_add(1, Ordering::SeqCst);
            1u32
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "nothing runs before result()"
        );
        client.result(x);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(client.barrier_count(), 1);
    }

    #[test]
    fn results_persist_no_recompute() {
        let calls = Arc::new(AtomicUsize::new(0));
        let client = DaskClient::new(2);
        let c = Arc::clone(&calls);
        let x = client.delayed(move || {
            c.fetch_add(1, Ordering::SeqCst);
            7u32
        });
        let y = client.delayed_map(x, |v| v + 1);
        client.result(x);
        client.result(y); // x's value is reused where it was computed
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(client.barrier_count(), 2);
    }

    #[test]
    fn wide_graph_executes_in_parallel() {
        // 8 slow leaves on 8 workers should take ~1 unit, not 8.
        let client = DaskClient::new(8);
        let start = std::time::Instant::now();
        let leaves: Vec<Delayed<u32>> = (0..8)
            .map(|i| {
                client.delayed(move || {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    i as u32
                })
            })
            .collect();
        let total = client.delayed_many(&leaves, |vs| vs.iter().copied().sum::<u32>());
        assert_eq!(client.result(total), 28);
        let elapsed = start.elapsed();
        assert!(elapsed.as_millis() < 300, "no parallelism: {elapsed:?}");
    }

    #[test]
    fn diamond_dependencies() {
        let client = DaskClient::new(4);
        let a = client.delayed(|| 10i64);
        let b = client.delayed_map(a, |v| v + 1);
        let c = client.delayed_map(a, |v| v + 2);
        let d = client.delayed_zip(b, c, |x, y| x * y);
        assert_eq!(client.result(d), 11 * 12);
    }

    #[test]
    fn compute_many_single_barrier() {
        let client = DaskClient::new(4);
        let xs: Vec<Delayed<usize>> = (0..5).map(|i| client.delayed(move || i * i)).collect();
        let vals = client.compute_many(&xs);
        assert_eq!(vals, vec![0, 1, 4, 9, 16]);
        assert_eq!(client.barrier_count(), 1);
    }

    #[test]
    fn graph_size_counts_nodes() {
        let client = DaskClient::new(1);
        let a = client.delayed(|| 1u8);
        let _b = client.delayed_map(a, |v| v + 1);
        assert_eq!(client.graph_size(), 2);
    }
}
