//! Property-based round-trip tests for every codec in `formats`.

use formats::{fits, nifti, npy, text};
use marray::NdArray;
use proptest::prelude::*;

fn f32_arrays(max_rank: usize) -> impl Strategy<Value = NdArray<f32>> {
    prop::collection::vec(1usize..=5, 1..=max_rank).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1e6f32..1e6, len)
            .prop_map(move |data| NdArray::from_vec(&dims, data).unwrap())
    })
}

fn images() -> impl Strategy<Value = NdArray<f32>> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1e6f32..1e6, r * c)
            .prop_map(move |data| NdArray::from_vec(&[r, c], data).unwrap())
    })
}

proptest! {
    #[test]
    fn nifti_roundtrip(a in f32_arrays(4), voxel in 0.5f32..3.0) {
        let buf = nifti::encode(&a, voxel).unwrap();
        let (h, b) = nifti::decode(&buf).unwrap();
        prop_assert_eq!(h.dims(), a.dims().to_vec());
        prop_assert_eq!(a, b);
        prop_assert_eq!(h.pixdim[1], voxel);
    }

    #[test]
    fn nifti_size_is_exact(a in f32_arrays(4)) {
        let buf = nifti::encode(&a, 1.0).unwrap();
        prop_assert_eq!(buf.len(), nifti::VOX_OFFSET + 4 * a.len());
    }

    #[test]
    fn fits_roundtrip_multi_hdu(planes in prop::collection::vec(images(), 1..=3)) {
        let hdus: Vec<fits::Hdu> = planes
            .iter()
            .map(|p| fits::Hdu { cards: vec![], data: p.clone() })
            .collect();
        let buf = fits::encode(&hdus);
        prop_assert_eq!(buf.len() % fits::BLOCK, 0);
        let back = fits::decode(&buf).unwrap();
        prop_assert_eq!(back.len(), hdus.len());
        for (a, b) in planes.iter().zip(&back) {
            prop_assert_eq!(a, &b.data);
        }
    }

    #[test]
    fn npy_f32_roundtrip(a in f32_arrays(4)) {
        prop_assert_eq!(npy::decode_f32(&npy::encode_f32(&a)).unwrap(), a);
    }

    #[test]
    fn npy_header_alignment(a in f32_arrays(4)) {
        let buf = npy::encode_f32(&a);
        let hlen = u16::from_le_bytes([buf[8], buf[9]]) as usize;
        prop_assert_eq!((10 + hlen) % 64, 0);
    }

    #[test]
    fn csv_roundtrip(a in f32_arrays(3)) {
        let csv = text::to_csv(&a);
        prop_assert_eq!(text::from_csv(&csv, a.dims()).unwrap(), a);
    }

    #[test]
    fn tsv_roundtrip(a in f32_arrays(3)) {
        prop_assert_eq!(text::from_tsv(&text::to_tsv(&a)).unwrap(), a);
    }

    #[test]
    fn decode_never_panics_on_mutated_nifti(
        a in f32_arrays(2),
        pos in 0usize..400,
        byte in any::<u8>(),
    ) {
        let mut buf = nifti::encode(&a, 1.0).unwrap();
        let idx = pos % buf.len();
        buf[idx] = byte;
        let _ = nifti::decode(&buf); // must not panic; error is acceptable
    }
}
