//! CSV/TSV array codecs.
//!
//! Two text paths exist in the paper and are reproduced here:
//!
//! * **`aio_input` CSV** — SciDB's accelerated loader consumes CSV rows of
//!   `coord0,coord1,...,value` (one row per cell). The NIfTI→CSV and
//!   FITS→CSV conversions the paper performs before `aio_input` ingest are
//!   [`to_csv`] / [`from_csv`].
//! * **`stream()` TSV** — SciDB's `stream()` interface hands chunk data to an
//!   external process as tab-separated values and reads TSV back. That is
//!   [`to_tsv`] / [`from_tsv`]: a first line with the dims, then one value
//!   per line row-major.

use crate::error::{FormatError, Result};
use marray::NdArray;

/// Render an array as `aio_input`-style CSV: one `coords...,value` row per
/// cell, row-major.
pub fn to_csv(array: &NdArray<f32>) -> String {
    let shape = array.shape();
    let mut out = String::with_capacity(array.len() * (shape.rank() * 4 + 12));
    for (off, ix) in shape.indices().enumerate() {
        for c in &ix {
            out.push_str(&c.to_string());
            out.push(',');
        }
        push_f32(&mut out, array.data()[off]);
        out.push('\n');
    }
    out
}

fn push_f32(out: &mut String, v: f32) {
    // Shortest representation that round-trips (Rust's float Display is
    // round-trip exact). Writing to a String is infallible.
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Parse `coords...,value` CSV back into a dense array of the given dims.
/// Cells may appear in any order; missing cells are zero.
pub fn from_csv(text: &str, dims: &[usize]) -> Result<NdArray<f32>> {
    let mut array = NdArray::zeros(dims);
    let rank = dims.len();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut ix = Vec::with_capacity(rank);
        for _ in 0..rank {
            let part = parts.next().ok_or_else(|| FormatError::Parse {
                format: "csv",
                detail: format!("line {}: too few fields", lineno + 1),
            })?;
            ix.push(
                part.trim()
                    .parse::<usize>()
                    .map_err(|e| FormatError::Parse {
                        format: "csv",
                        detail: format!("line {}: bad coordinate {part:?}: {e}", lineno + 1),
                    })?,
            );
        }
        let value_text = parts.next().ok_or_else(|| FormatError::Parse {
            format: "csv",
            detail: format!("line {}: missing value", lineno + 1),
        })?;
        let value = value_text
            .trim()
            .parse::<f32>()
            .map_err(|e| FormatError::Parse {
                format: "csv",
                detail: format!("line {}: bad value {value_text:?}: {e}", lineno + 1),
            })?;
        array.set(&ix, value).map_err(|e| FormatError::Parse {
            format: "csv",
            detail: format!("line {}: {e}", lineno + 1),
        })?;
    }
    Ok(array)
}

/// Render an array as `stream()`-style TSV: a dims line, then one value per
/// line in row-major order.
pub fn to_tsv(array: &NdArray<f32>) -> String {
    let mut out = String::with_capacity(array.len() * 12 + 32);
    let dims: Vec<String> = array.dims().iter().map(|d| d.to_string()).collect();
    out.push_str(&dims.join("\t"));
    out.push('\n');
    for &v in array.data() {
        push_f32(&mut out, v);
        out.push('\n');
    }
    out
}

/// Parse `stream()`-style TSV produced by [`to_tsv`].
pub fn from_tsv(text: &str) -> Result<NdArray<f32>> {
    let mut lines = text.lines();
    let dims_line = lines.next().ok_or(FormatError::Truncated {
        format: "tsv",
        needed: 1,
        got: 0,
    })?;
    let dims: Vec<usize> = dims_line
        .split('\t')
        .map(|s| {
            s.trim().parse::<usize>().map_err(|e| FormatError::Parse {
                format: "tsv",
                detail: format!("bad dims field {s:?}: {e}"),
            })
        })
        .collect::<Result<_>>()?;
    let n: usize = dims.iter().product();
    let mut data = Vec::with_capacity(n);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        data.push(line.trim().parse::<f32>().map_err(|e| FormatError::Parse {
            format: "tsv",
            detail: format!("bad value {line:?}: {e}"),
        })?);
    }
    if data.len() != n {
        return Err(FormatError::Truncated {
            format: "tsv",
            needed: n,
            got: data.len(),
        });
    }
    Ok(NdArray::from_vec(&dims, data)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NdArray<f32> {
        NdArray::from_fn(&[3, 4], |ix| (ix[0] * 4 + ix[1]) as f32 * 1.5 - 3.0)
    }

    #[test]
    fn csv_roundtrip() {
        let a = sample();
        let text = to_csv(&a);
        assert!(text.starts_with("0,0,-3\n"));
        let b = from_csv(&text, a.dims()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn csv_out_of_order_cells() {
        let text = "1,1,5.0\n0,0,1.0\n";
        let a = from_csv(text, &[2, 2]).unwrap();
        assert_eq!(a[&[0, 0]], 1.0);
        assert_eq!(a[&[1, 1]], 5.0);
        assert_eq!(a[&[0, 1]], 0.0);
    }

    #[test]
    fn csv_errors() {
        assert!(from_csv("0,0\n", &[1, 1]).is_err()); // missing value
        assert!(from_csv("x,0,1.0\n", &[1, 1]).is_err()); // bad coord
        assert!(from_csv("0,0,hello\n", &[1, 1]).is_err()); // bad value
        assert!(from_csv("5,0,1.0\n", &[1, 1]).is_err()); // OOB coord
    }

    #[test]
    fn tsv_roundtrip() {
        let a = sample();
        let b = from_tsv(&to_tsv(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tsv_roundtrip_extreme_values() {
        let a = NdArray::from_vec(&[4], vec![f32::MIN, f32::MAX, 1e-38, -0.0]).unwrap();
        let b = from_tsv(&to_tsv(&a)).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn tsv_length_mismatch() {
        let a = sample();
        let mut text = to_tsv(&a);
        text.push_str("99\n");
        assert!(from_tsv(&text).is_err());
    }

    #[test]
    fn csv_size_inflation_is_large() {
        // The paper notes text conversion overhead; a binary f32 is 4 bytes,
        // CSV rows for realistic image values are several times that.
        let a = NdArray::from_fn(&[16, 16], |ix| {
            1000.0 + (ix[0] * 16 + ix[1]) as f32 * 0.8125
        });
        let csv = to_csv(&a);
        assert!(csv.len() > 2 * a.nbytes());
    }
}
