//! NIfTI-1 codec (<https://nifti.nimh.nih.gov/nifti-1>).
//!
//! Implements the real single-file (`.nii`) layout: the 348-byte binary
//! header, 4 bytes of extension flags, then the voxel payload at
//! `vox_offset` (352). Little-endian byte order, `DT_FLOAT32` payloads —
//! the combination the Human Connectome Project dMRI releases use.

use crate::error::{FormatError, Result};
use marray::NdArray;

/// NIfTI-1 datatype code for 32-bit IEEE floats.
pub const DT_FLOAT32: i16 = 16;
/// Fixed header size mandated by the spec.
pub const HEADER_SIZE: usize = 348;
/// Offset of the voxel data in a single-file `.nii`.
pub const VOX_OFFSET: usize = 352;

/// The subset of NIfTI-1 header fields the pipelines use.
#[derive(Debug, Clone, PartialEq)]
pub struct NiftiHeader {
    /// Number of dimensions (1..=7) followed by extents; `dim[0]` is rank.
    pub dim: [i16; 8],
    /// Datatype code (only [`DT_FLOAT32`] is supported).
    pub datatype: i16,
    /// Bits per voxel (32 for float32).
    pub bitpix: i16,
    /// Grid spacings; `pixdim[1..=3]` are voxel sizes in mm.
    pub pixdim: [f32; 8],
    /// Byte offset of the voxel data.
    pub vox_offset: f32,
    /// Free-text description.
    pub descrip: [u8; 80],
}

impl NiftiHeader {
    /// Header for a float32 volume of the given dims (rank 1..=7) with
    /// isotropic voxel size `voxel_mm`.
    pub fn for_dims(dims: &[usize], voxel_mm: f32) -> Result<Self> {
        if dims.is_empty() || dims.len() > 7 {
            return Err(FormatError::BadHeader {
                format: "nifti",
                detail: format!("rank {} outside 1..=7", dims.len()),
            });
        }
        let mut dim = [1i16; 8];
        dim[0] = dims.len() as i16;
        for (i, &d) in dims.iter().enumerate() {
            if d == 0 || d > i16::MAX as usize {
                return Err(FormatError::BadHeader {
                    format: "nifti",
                    detail: format!("extent {d} not representable"),
                });
            }
            dim[i + 1] = d as i16;
        }
        let mut pixdim = [1.0f32; 8];
        for p in pixdim.iter_mut().take(4).skip(1) {
            *p = voxel_mm;
        }
        let mut descrip = [0u8; 80];
        let text = b"scibench synthetic dMRI";
        descrip[..text.len()].copy_from_slice(text);
        Ok(NiftiHeader {
            dim,
            datatype: DT_FLOAT32,
            bitpix: 32,
            pixdim,
            vox_offset: VOX_OFFSET as f32,
            descrip,
        })
    }

    /// Dims as a shape vector (drops trailing 1-extents beyond the rank).
    pub fn dims(&self) -> Vec<usize> {
        let rank = self.dim[0] as usize;
        (1..=rank).map(|i| self.dim[i] as usize).collect()
    }

    /// Number of voxels.
    pub fn num_voxels(&self) -> usize {
        self.dims().iter().product()
    }
}

fn put_i16(buf: &mut [u8], off: usize, v: i16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn put_i32(buf: &mut [u8], off: usize, v: i32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn put_f32(buf: &mut [u8], off: usize, v: f32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn get_i16(buf: &[u8], off: usize) -> i16 {
    i16::from_le_bytes([buf[off], buf[off + 1]])
}
fn get_f32(buf: &[u8], off: usize) -> f32 {
    f32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Encode a float32 array as a single-file NIfTI-1 (`.nii`) byte buffer.
pub fn encode(array: &NdArray<f32>, voxel_mm: f32) -> Result<Vec<u8>> {
    let header = NiftiHeader::for_dims(array.dims(), voxel_mm)?;
    let mut buf = vec![0u8; VOX_OFFSET + array.len() * 4];
    // Field offsets per the NIfTI-1 C struct layout.
    put_i32(&mut buf, 0, HEADER_SIZE as i32); // sizeof_hdr
    for (i, &d) in header.dim.iter().enumerate() {
        put_i16(&mut buf, 40 + 2 * i, d); // dim[8]
    }
    put_i16(&mut buf, 70, header.datatype); // datatype
    put_i16(&mut buf, 72, header.bitpix); // bitpix
    for (i, &p) in header.pixdim.iter().enumerate() {
        put_f32(&mut buf, 76 + 4 * i, p); // pixdim[8]
    }
    put_f32(&mut buf, 108, header.vox_offset); // vox_offset
    put_f32(&mut buf, 112, 1.0); // scl_slope
    buf[148..228].copy_from_slice(&header.descrip); // descrip[80]
    buf[344..348].copy_from_slice(b"n+1\0"); // magic
                                             // 4 bytes of extension flags (all zero = no extensions) at 348..352.
    marray::record_copy("formats.nifti-encode", array.nbytes());
    let mut off = VOX_OFFSET;
    for &v in array.data() {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        off += 4;
    }
    Ok(buf)
}

/// Decode a single-file NIfTI-1 byte buffer.
pub fn decode(buf: &[u8]) -> Result<(NiftiHeader, NdArray<f32>)> {
    if buf.len() < VOX_OFFSET {
        return Err(FormatError::Truncated {
            format: "nifti",
            needed: VOX_OFFSET,
            got: buf.len(),
        });
    }
    if &buf[344..348] != b"n+1\0" {
        return Err(FormatError::BadMagic {
            format: "nifti",
            detail: format!("{:?}", &buf[344..348]),
        });
    }
    let sizeof_hdr = i32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if sizeof_hdr != HEADER_SIZE as i32 {
        return Err(FormatError::BadHeader {
            format: "nifti",
            detail: format!("sizeof_hdr = {sizeof_hdr}"),
        });
    }
    let mut dim = [0i16; 8];
    for (i, d) in dim.iter_mut().enumerate() {
        *d = get_i16(buf, 40 + 2 * i);
    }
    let datatype = get_i16(buf, 70);
    if datatype != DT_FLOAT32 {
        return Err(FormatError::BadHeader {
            format: "nifti",
            detail: format!("unsupported datatype {datatype}"),
        });
    }
    let bitpix = get_i16(buf, 72);
    let mut pixdim = [0f32; 8];
    for (i, p) in pixdim.iter_mut().enumerate() {
        *p = get_f32(buf, 76 + 4 * i);
    }
    let vox_offset = get_f32(buf, 108);
    let mut descrip = [0u8; 80];
    descrip.copy_from_slice(&buf[148..228]);
    let header = NiftiHeader {
        dim,
        datatype,
        bitpix,
        pixdim,
        vox_offset,
        descrip,
    };

    let rank = header.dim[0];
    if !(1..=7).contains(&rank) {
        return Err(FormatError::BadHeader {
            format: "nifti",
            detail: format!("dim[0] = {rank}"),
        });
    }
    // Every in-rank extent must be a positive i16; a corrupted header with
    // negative extents would otherwise wrap to enormous indices.
    for i in 1..=rank as usize {
        if header.dim[i] <= 0 {
            return Err(FormatError::BadHeader {
                format: "nifti",
                detail: format!("dim[{i}] = {}", header.dim[i]),
            });
        }
    }
    if !vox_offset.is_finite() || vox_offset < HEADER_SIZE as f32 || vox_offset > 1e9 {
        return Err(FormatError::BadHeader {
            format: "nifti",
            detail: format!("vox_offset = {vox_offset}"),
        });
    }
    let dims = header.dims();
    let n = header.num_voxels();
    let data_start = vox_offset as usize;
    let needed = n
        .checked_mul(4)
        .and_then(|b| b.checked_add(data_start))
        .ok_or(FormatError::BadHeader {
            format: "nifti",
            detail: "size overflow".into(),
        })?;
    if buf.len() < needed {
        return Err(FormatError::Truncated {
            format: "nifti",
            needed,
            got: buf.len(),
        });
    }
    marray::record_copy("formats.nifti-decode", 4 * n);
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let off = data_start + 4 * i;
        data.push(f32::from_le_bytes([
            buf[off],
            buf[off + 1],
            buf[off + 2],
            buf[off + 3],
        ]));
    }
    Ok((header, NdArray::from_vec(&dims, data)?))
}

/// Write an array to a `.nii` file.
pub fn write_file(path: &std::path::Path, array: &NdArray<f32>, voxel_mm: f32) -> Result<()> {
    std::fs::write(path, encode(array, voxel_mm)?)?;
    Ok(())
}

/// Read a `.nii` file.
pub fn read_file(path: &std::path::Path) -> Result<(NiftiHeader, NdArray<f32>)> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NdArray<f32> {
        NdArray::from_fn(&[3, 4, 5, 2], |ix| {
            (ix[0] as f32) + 10.0 * ix[1] as f32 + 100.0 * ix[2] as f32 + 1000.0 * ix[3] as f32
        })
    }

    #[test]
    fn roundtrip_4d() {
        let a = sample();
        let buf = encode(&a, 1.25).unwrap();
        assert_eq!(buf.len(), VOX_OFFSET + a.len() * 4);
        let (h, b) = decode(&buf).unwrap();
        assert_eq!(h.dims(), vec![3, 4, 5, 2]);
        assert_eq!(h.pixdim[1], 1.25);
        assert_eq!(a, b);
    }

    #[test]
    fn header_size_is_canonical() {
        let a = sample();
        let buf = encode(&a, 1.0).unwrap();
        assert_eq!(i32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]), 348);
        assert_eq!(&buf[344..348], b"n+1\0");
    }

    #[test]
    fn rejects_bad_magic() {
        let a = sample();
        let mut buf = encode(&a, 1.0).unwrap();
        buf[344] = b'x';
        assert!(matches!(decode(&buf), Err(FormatError::BadMagic { .. })));
    }

    #[test]
    fn rejects_truncated_payload() {
        let a = sample();
        let mut buf = encode(&a, 1.0).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(matches!(decode(&buf), Err(FormatError::Truncated { .. })));
    }

    #[test]
    fn rejects_non_float_datatype() {
        let a = sample();
        let mut buf = encode(&a, 1.0).unwrap();
        buf[70] = 4; // DT_INT16
        assert!(matches!(decode(&buf), Err(FormatError::BadHeader { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("scibench_nifti_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vol.nii");
        let a = sample();
        write_file(&path, &a, 1.25).unwrap();
        let (_, b) = read_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paper_scale_volume_roundtrip() {
        // Two full-size HCP volumes (145×145×174): ~29 MB of payload.
        let a = NdArray::from_fn(&[145, 145, 174, 2], |ix| {
            (ix[0] * 7 + ix[1] * 3 + ix[2] + ix[3] * 11) as f32 * 0.25
        });
        let buf = encode(&a, 1.25).unwrap();
        assert_eq!(buf.len(), VOX_OFFSET + 145 * 145 * 174 * 2 * 4);
        let (h, b) = decode(&buf).unwrap();
        assert_eq!(h.dims(), vec![145, 145, 174, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_limits() {
        assert!(NiftiHeader::for_dims(&[], 1.0).is_err());
        assert!(NiftiHeader::for_dims(&[1; 8], 1.0).is_err());
        assert!(NiftiHeader::for_dims(&[145, 145, 174, 288], 1.25).is_ok());
    }
}
