#![warn(missing_docs)]

//! # formats — scientific image file formats, from scratch
//!
//! Self-contained codecs for the file formats the two use cases move data
//! through, mirroring the paper's data paths:
//!
//! * [`nifti`] — NIfTI-1 (the neuroscience input format): the real 348-byte
//!   header layout with `float32` 4-D payloads.
//! * [`fits`] — FITS (the astronomy input format): 2880-byte header blocks of
//!   80-character cards, big-endian IEEE `float32` image HDUs; one HDU each
//!   for the flux, variance and mask planes of a sensor exposure.
//! * [`npy`] — NumPy `.npy` v1.0, the staging format the paper uses for
//!   Spark and Myria ingest ("pickled NumPy files per image in S3").
//! * [`text`] — CSV/TSV array codecs, the SciDB `aio_input` load format and
//!   the `stream()` interchange format.
//!
//! All codecs are pure functions over byte buffers plus thin file helpers,
//! so the engines can account for conversion costs explicitly.

mod error;
pub mod fits;
pub mod nifti;
pub mod npy;
pub mod text;

pub use error::{FormatError, Result};
