use std::fmt;

/// Errors produced while encoding or decoding scientific file formats.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing (format/needed/got)
pub enum FormatError {
    /// The buffer is shorter than the format requires.
    Truncated {
        format: &'static str,
        needed: usize,
        got: usize,
    },
    /// A magic number / signature check failed.
    BadMagic {
        format: &'static str,
        detail: String,
    },
    /// A header field holds an unsupported or inconsistent value.
    BadHeader {
        format: &'static str,
        detail: String,
    },
    /// A value could not be parsed from text.
    Parse {
        format: &'static str,
        detail: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Array construction failed (shape/buffer mismatch).
    Array(marray::ArrayError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Truncated {
                format,
                needed,
                got,
            } => {
                write!(
                    f,
                    "{format}: truncated input, needed {needed} bytes, got {got}"
                )
            }
            FormatError::BadMagic { format, detail } => write!(f, "{format}: bad magic: {detail}"),
            FormatError::BadHeader { format, detail } => {
                write!(f, "{format}: bad header: {detail}")
            }
            FormatError::Parse { format, detail } => write!(f, "{format}: parse error: {detail}"),
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Array(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            FormatError::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

impl From<marray::ArrayError> for FormatError {
    fn from(e: marray::ArrayError) -> Self {
        FormatError::Array(e)
    }
}

/// Convenience result alias for codec operations.
pub type Result<T> = std::result::Result<T, FormatError>;
