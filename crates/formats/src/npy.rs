//! NumPy `.npy` v1.0 codec.
//!
//! This is the staging format the paper uses for Spark and Myria ingest:
//! "we first convert the NIfTI files into individual image volumes, which we
//! persist as pickled NumPy files per image in S3". The v1.0 format is
//! `\x93NUMPY`, version bytes, a little-endian u16 header length, an ASCII
//! dict `{'descr': '<f4', 'fortran_order': False, 'shape': (..,), }` padded
//! so the payload starts at a 64-byte boundary, then raw little-endian data.

use crate::error::{FormatError, Result};
use marray::NdArray;

const MAGIC: &[u8; 6] = b"\x93NUMPY";

/// Encode a float32 array as `.npy` v1.0 bytes.
pub fn encode_f32(array: &NdArray<f32>) -> Vec<u8> {
    encode_raw(
        "<f4",
        array.dims(),
        array.data().iter().flat_map(|v| v.to_le_bytes()).collect(),
    )
}

/// Encode a float64 array as `.npy` v1.0 bytes.
pub fn encode_f64(array: &NdArray<f64>) -> Vec<u8> {
    encode_raw(
        "<f8",
        array.dims(),
        array.data().iter().flat_map(|v| v.to_le_bytes()).collect(),
    )
}

fn encode_raw(descr: &str, dims: &[usize], payload: Vec<u8>) -> Vec<u8> {
    // Serializing the payload to bytes is the staging-format copy the
    // paper's Spark/Myria ingest pays; the counter makes it visible.
    marray::record_copy("formats.npy-encode", payload.len());
    let shape = match dims.len() {
        0 => "()".to_string(),
        1 => format!("({},)", dims[0]),
        _ => format!(
            "({})",
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    let mut dict = format!("{{'descr': '{descr}', 'fortran_order': False, 'shape': {shape}, }}");
    // Pad with spaces + trailing newline so that (10 + len) % 64 == 0.
    let base = MAGIC.len() + 2 + 2; // magic + version + header-len field
    let total = (base + dict.len() + 1).div_ceil(64) * 64;
    while base + dict.len() + 1 < total {
        dict.push(' ');
    }
    dict.push('\n');

    let mut out = Vec::with_capacity(total + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(1); // major
    out.push(0); // minor
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    out.extend_from_slice(dict.as_bytes());
    out.extend_from_slice(&payload);
    out
}

fn parse_header(buf: &[u8]) -> Result<(String, Vec<usize>, usize)> {
    if buf.len() < 10 {
        return Err(FormatError::Truncated {
            format: "npy",
            needed: 10,
            got: buf.len(),
        });
    }
    if &buf[..6] != MAGIC {
        return Err(FormatError::BadMagic {
            format: "npy",
            detail: format!("{:?}", &buf[..6]),
        });
    }
    if buf[6] != 1 {
        return Err(FormatError::BadHeader {
            format: "npy",
            detail: format!("version {}.{}", buf[6], buf[7]),
        });
    }
    let hlen = u16::from_le_bytes([buf[8], buf[9]]) as usize;
    let data_start = 10 + hlen;
    if buf.len() < data_start {
        return Err(FormatError::Truncated {
            format: "npy",
            needed: data_start,
            got: buf.len(),
        });
    }
    let header = String::from_utf8_lossy(&buf[10..data_start]);
    let descr = extract_quoted(&header, "descr").ok_or_else(|| FormatError::Parse {
        format: "npy",
        detail: "missing descr".into(),
    })?;
    if header.contains("'fortran_order': True") {
        return Err(FormatError::BadHeader {
            format: "npy",
            detail: "fortran_order unsupported".into(),
        });
    }
    let shape_src = header
        .split("'shape':")
        .nth(1)
        .and_then(|s| s.split('(').nth(1))
        .and_then(|s| s.split(')').next())
        .ok_or_else(|| FormatError::Parse {
            format: "npy",
            detail: "missing shape".into(),
        })?;
    let dims: Vec<usize> = shape_src
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>().map_err(|e| FormatError::Parse {
                format: "npy",
                detail: format!("shape element {s:?}: {e}"),
            })
        })
        .collect::<Result<_>>()?;
    Ok((descr, dims, data_start))
}

fn extract_quoted(header: &str, key: &str) -> Option<String> {
    let pat = format!("'{key}':");
    let rest = header.split(&pat).nth(1)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('\'')?;
    Some(rest.split('\'').next()?.to_string())
}

/// Decode `.npy` bytes into a float32 array (accepts `<f4` payloads).
pub fn decode_f32(buf: &[u8]) -> Result<NdArray<f32>> {
    let (descr, dims, start) = parse_header(buf)?;
    if descr != "<f4" {
        return Err(FormatError::BadHeader {
            format: "npy",
            detail: format!("descr {descr:?}, expected <f4"),
        });
    }
    let n: usize = dims.iter().product();
    let needed = start + 4 * n;
    if buf.len() < needed {
        return Err(FormatError::Truncated {
            format: "npy",
            needed,
            got: buf.len(),
        });
    }
    marray::record_copy("formats.npy-decode", 4 * n);
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let o = start + 4 * i;
        data.push(f32::from_le_bytes([
            buf[o],
            buf[o + 1],
            buf[o + 2],
            buf[o + 3],
        ]));
    }
    Ok(NdArray::from_vec(&dims, data)?)
}

/// Decode `.npy` bytes into a float64 array (accepts `<f8` payloads).
pub fn decode_f64(buf: &[u8]) -> Result<NdArray<f64>> {
    let (descr, dims, start) = parse_header(buf)?;
    if descr != "<f8" {
        return Err(FormatError::BadHeader {
            format: "npy",
            detail: format!("descr {descr:?}, expected <f8"),
        });
    }
    let n: usize = dims.iter().product();
    let needed = start + 8 * n;
    if buf.len() < needed {
        return Err(FormatError::Truncated {
            format: "npy",
            needed,
            got: buf.len(),
        });
    }
    marray::record_copy("formats.npy-decode", 8 * n);
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let o = start + 8 * i;
        data.push(f64::from_le_bytes([
            buf[o],
            buf[o + 1],
            buf[o + 2],
            buf[o + 3],
            buf[o + 4],
            buf[o + 5],
            buf[o + 6],
            buf[o + 7],
        ]));
    }
    Ok(NdArray::from_vec(&dims, data)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let a = NdArray::from_fn(&[4, 5, 3], |ix| (ix[0] + 10 * ix[1] + 100 * ix[2]) as f32);
        let buf = encode_f32(&a);
        let b = decode_f32(&buf).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn f64_roundtrip_rank1() {
        let a = NdArray::from_vec(&[5], vec![1.5f64, -2.25, 0.0, 3.0, 9.75]).unwrap();
        let b = decode_f64(&encode_f64(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn payload_starts_at_64_byte_boundary() {
        let a = NdArray::<f32>::zeros(&[2, 2]);
        let buf = encode_f32(&a);
        let hlen = u16::from_le_bytes([buf[8], buf[9]]) as usize;
        assert_eq!((10 + hlen) % 64, 0);
        assert!(String::from_utf8_lossy(&buf[10..10 + hlen]).ends_with('\n'));
    }

    #[test]
    fn dtype_mismatch_is_error() {
        let a = NdArray::<f64>::zeros(&[3]);
        assert!(decode_f32(&encode_f64(&a)).is_err());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let a = NdArray::<f32>::zeros(&[3]);
        let mut buf = encode_f32(&a);
        buf[0] = 0;
        assert!(matches!(
            decode_f32(&buf),
            Err(FormatError::BadMagic { .. })
        ));
        let buf = encode_f32(&a);
        assert!(matches!(
            decode_f32(&buf[..buf.len() - 2]),
            Err(FormatError::Truncated { .. })
        ));
    }

    #[test]
    fn header_is_numpy_readable_dict() {
        let a = NdArray::<f32>::zeros(&[7, 9]);
        let buf = encode_f32(&a);
        let hlen = u16::from_le_bytes([buf[8], buf[9]]) as usize;
        let header = String::from_utf8_lossy(&buf[10..10 + hlen]).into_owned();
        assert!(header.contains("'descr': '<f4'"));
        assert!(header.contains("'shape': (7, 9)"));
        assert!(header.contains("'fortran_order': False"));
    }
}
