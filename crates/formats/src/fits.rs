//! FITS codec (<https://fits.gsfc.nasa.gov>).
//!
//! Implements the real on-disk structure: headers are sequences of 80-byte
//! ASCII "cards" padded to 2880-byte blocks; data follow in big-endian IEEE
//! format, also padded to 2880-byte blocks. The astronomy use case stores a
//! sensor exposure as a primary HDU (flux) plus two image-extension HDUs
//! (variance, mask), matching "the data block has three 2D arrays, with each
//! element containing flux, variance, and mask for every pixel".

use crate::error::{FormatError, Result};
use marray::NdArray;

/// FITS logical record (block) size.
pub const BLOCK: usize = 2880;
/// Length of one header card.
pub const CARD: usize = 80;

/// One header keyword/value pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Card {
    /// Keyword (max 8 chars).
    pub key: String,
    /// Raw value text (already formatted per FITS fixed conventions).
    pub value: String,
}

impl Card {
    fn render(&self) -> [u8; CARD] {
        let mut out = [b' '; CARD];
        let text = if self.value.is_empty() {
            format!("{:<8}", self.key)
        } else {
            format!("{:<8}= {:>20}", self.key, self.value)
        };
        let bytes = text.as_bytes();
        let n = bytes.len().min(CARD);
        out[..n].copy_from_slice(&bytes[..n]);
        out
    }

    fn parse(raw: &[u8]) -> Card {
        let text = String::from_utf8_lossy(raw);
        let key = text[..8.min(text.len())].trim().to_string();
        let value = if text.len() > 10 && &text[8..10] == "= " {
            text[10..]
                .split('/')
                .next()
                .unwrap_or("")
                .trim()
                .to_string()
        } else {
            String::new()
        };
        Card { key, value }
    }
}

/// Pixel payload of one HDU: BITPIX -32 (IEEE float) for flux/variance
/// planes, BITPIX 8 (unsigned bytes) for mask planes.
#[derive(Debug, Clone, PartialEq)]
pub enum ImageData {
    /// BITPIX = -32.
    F32(NdArray<f32>),
    /// BITPIX = 8.
    U8(NdArray<u8>),
}

impl ImageData {
    /// Image dims (rows, cols).
    pub fn dims(&self) -> &[usize] {
        match self {
            ImageData::F32(a) => a.dims(),
            ImageData::U8(a) => a.dims(),
        }
    }

    /// View as f32 (converting bytes if needed).
    pub fn to_f32(&self) -> NdArray<f32> {
        match self {
            ImageData::F32(a) => a.clone(),
            ImageData::U8(a) => a.cast(),
        }
    }

    /// View as u8 (truncating floats if needed).
    pub fn to_u8(&self) -> NdArray<u8> {
        match self {
            ImageData::F32(a) => a.cast(),
            ImageData::U8(a) => a.clone(),
        }
    }
}

/// One Header-Data Unit: parsed header cards plus a 2-D float32 image.
#[derive(Debug, Clone, PartialEq)]
pub struct Hdu {
    /// All header cards (END excluded).
    pub cards: Vec<Card>,
    /// The image payload (rank 2).
    pub data: NdArray<f32>,
}

/// One HDU with a typed payload (the general form; [`Hdu`] is the
/// float-only convenience the pipelines mostly use).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedHdu {
    /// All header cards (END excluded).
    pub cards: Vec<Card>,
    /// The image payload (rank 2).
    pub data: ImageData,
}

impl Hdu {
    /// Look up a card's value text by keyword.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.cards
            .iter()
            .find(|c| c.key == key)
            .map(|c| c.value.as_str())
    }

    /// Look up a card and parse it as f64.
    pub fn value_f64(&self, key: &str) -> Option<f64> {
        self.value(key)
            .and_then(|v| v.trim_matches('\'').trim().parse().ok())
    }
}

fn pad_to_block(buf: &mut Vec<u8>, fill: u8) {
    let rem = buf.len() % BLOCK;
    if rem != 0 {
        buf.resize(buf.len() + (BLOCK - rem), fill);
    }
}

fn encode_hdu(cards_in: &[Card], data: &ImageData, primary: bool, out: &mut Vec<u8>) {
    let dims = data.dims();
    assert_eq!(dims.len(), 2, "FITS codec stores rank-2 images");
    let bitpix = match data {
        ImageData::F32(_) => "-32",
        ImageData::U8(_) => "8",
    };
    let mut cards: Vec<Card> = Vec::new();
    if primary {
        cards.push(Card {
            key: "SIMPLE".into(),
            value: "T".into(),
        });
    } else {
        cards.push(Card {
            key: "XTENSION".into(),
            value: "'IMAGE   '".into(),
        });
    }
    cards.push(Card {
        key: "BITPIX".into(),
        value: bitpix.into(),
    });
    cards.push(Card {
        key: "NAXIS".into(),
        value: "2".into(),
    });
    // FITS NAXIS1 is the fastest-varying axis = our last (column) axis.
    cards.push(Card {
        key: "NAXIS1".into(),
        value: dims[1].to_string(),
    });
    cards.push(Card {
        key: "NAXIS2".into(),
        value: dims[0].to_string(),
    });
    if primary {
        cards.push(Card {
            key: "EXTEND".into(),
            value: "T".into(),
        });
    } else {
        cards.push(Card {
            key: "PCOUNT".into(),
            value: "0".into(),
        });
        cards.push(Card {
            key: "GCOUNT".into(),
            value: "1".into(),
        });
    }
    cards.extend(cards_in.iter().cloned());
    for card in &cards {
        out.extend_from_slice(&card.render());
    }
    let mut end = [b' '; CARD];
    end[..3].copy_from_slice(b"END");
    out.extend_from_slice(&end);
    pad_to_block(out, b' ');
    match data {
        ImageData::F32(a) => {
            marray::record_copy("formats.fits-encode", a.nbytes());
            for &v in a.data() {
                out.extend_from_slice(&v.to_be_bytes()); // FITS is big-endian
            }
        }
        ImageData::U8(a) => {
            marray::record_copy("formats.fits-encode", a.nbytes());
            out.extend_from_slice(a.data());
        }
    }
    pad_to_block(out, 0);
}

/// Encode a sequence of float HDUs (first one is the primary).
pub fn encode(hdus: &[Hdu]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, hdu) in hdus.iter().enumerate() {
        encode_hdu(
            &hdu.cards,
            &ImageData::F32(hdu.data.clone()),
            i == 0,
            &mut out,
        );
    }
    out
}

/// Encode a sequence of typed HDUs (mixing BITPIX -32 and 8).
pub fn encode_typed(hdus: &[TypedHdu]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, hdu) in hdus.iter().enumerate() {
        encode_hdu(&hdu.cards, &hdu.data, i == 0, &mut out);
    }
    out
}

fn reserved(key: &str) -> bool {
    matches!(
        key,
        "SIMPLE"
            | "XTENSION"
            | "BITPIX"
            | "NAXIS"
            | "NAXIS1"
            | "NAXIS2"
            | "EXTEND"
            | "PCOUNT"
            | "GCOUNT"
    )
}

fn decode_hdu(buf: &[u8], pos: &mut usize, primary: bool) -> Result<TypedHdu> {
    let start = *pos;
    let mut cards = Vec::new();
    let mut ended = false;
    let mut cursor = start;
    while !ended {
        if cursor + BLOCK > buf.len() {
            return Err(FormatError::Truncated {
                format: "fits",
                needed: cursor + BLOCK,
                got: buf.len(),
            });
        }
        for c in 0..(BLOCK / CARD) {
            let raw = &buf[cursor + c * CARD..cursor + (c + 1) * CARD];
            let card = Card::parse(raw);
            if card.key == "END" {
                ended = true;
                break;
            }
            if !card.key.is_empty() {
                cards.push(card);
            }
        }
        cursor += BLOCK;
    }
    // Validate structural keywords.
    let expect_first = if primary { "SIMPLE" } else { "XTENSION" };
    if cards.first().map(|c| c.key.as_str()) != Some(expect_first) {
        return Err(FormatError::BadMagic {
            format: "fits",
            detail: format!("first card is {:?}, expected {expect_first}", cards.first()),
        });
    }
    let find = |key: &str| -> Result<i64> {
        cards
            .iter()
            .find(|c| c.key == key)
            .and_then(|c| c.value.trim().parse().ok())
            .ok_or_else(|| FormatError::BadHeader {
                format: "fits",
                detail: format!("missing {key}"),
            })
    };
    let bitpix = find("BITPIX")?;
    if bitpix != -32 && bitpix != 8 {
        return Err(FormatError::BadHeader {
            format: "fits",
            detail: format!("BITPIX {bitpix} unsupported"),
        });
    }
    let naxis = find("NAXIS")?;
    if naxis != 2 {
        return Err(FormatError::BadHeader {
            format: "fits",
            detail: format!("NAXIS {naxis} unsupported"),
        });
    }
    let n1 = find("NAXIS1")? as usize;
    let n2 = find("NAXIS2")? as usize;
    let cell = if bitpix == -32 { 4 } else { 1 };
    let nbytes = n1 * n2 * cell;
    if cursor + nbytes > buf.len() {
        return Err(FormatError::Truncated {
            format: "fits",
            needed: cursor + nbytes,
            got: buf.len(),
        });
    }
    let data = if bitpix == -32 {
        let mut v = Vec::with_capacity(n1 * n2);
        marray::record_copy("formats.fits-decode", nbytes);
        for i in 0..n1 * n2 {
            let o = cursor + 4 * i;
            v.push(f32::from_be_bytes([
                buf[o],
                buf[o + 1],
                buf[o + 2],
                buf[o + 3],
            ]));
        }
        ImageData::F32(NdArray::from_vec(&[n2, n1], v)?)
    } else {
        ImageData::U8({
            marray::record_copy("formats.fits-decode", nbytes);
            NdArray::from_vec(&[n2, n1], buf[cursor..cursor + nbytes].to_vec())?
        })
    };
    cursor += nbytes;
    // Skip data padding.
    let rem = cursor % BLOCK;
    if rem != 0 {
        cursor += BLOCK - rem;
    }
    *pos = cursor;
    let user_cards: Vec<Card> = cards.into_iter().filter(|c| !reserved(&c.key)).collect();
    Ok(TypedHdu {
        cards: user_cards,
        data,
    })
}

/// Decode every HDU in a FITS buffer as float images (BITPIX 8 payloads
/// are widened).
pub fn decode(buf: &[u8]) -> Result<Vec<Hdu>> {
    Ok(decode_typed(buf)?
        .into_iter()
        .map(|h| Hdu {
            cards: h.cards,
            data: h.data.to_f32(),
        })
        .collect())
}

/// Decode every HDU in a FITS buffer, preserving payload types.
pub fn decode_typed(buf: &[u8]) -> Result<Vec<TypedHdu>> {
    if buf.len() < BLOCK {
        return Err(FormatError::Truncated {
            format: "fits",
            needed: BLOCK,
            got: buf.len(),
        });
    }
    let mut pos = 0;
    let mut hdus = Vec::new();
    let mut primary = true;
    while pos + BLOCK <= buf.len() {
        // Stop at trailing zero padding (no further XTENSION).
        if !primary && buf[pos..pos + CARD].iter().all(|&b| b == 0 || b == b' ') {
            break;
        }
        hdus.push(decode_hdu(buf, &mut pos, primary)?);
        primary = false;
    }
    Ok(hdus)
}

/// Write HDUs to a `.fits` file.
pub fn write_file(path: &std::path::Path, hdus: &[Hdu]) -> Result<()> {
    std::fs::write(path, encode(hdus))?;
    Ok(())
}

/// Read all HDUs from a `.fits` file.
pub fn read_file(path: &std::path::Path) -> Result<Vec<Hdu>> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(tag: f32, dims: &[usize]) -> NdArray<f32> {
        NdArray::from_fn(dims, |ix| tag + (ix[0] * dims[1] + ix[1]) as f32)
    }

    fn exposure() -> Vec<Hdu> {
        vec![
            Hdu {
                cards: vec![
                    Card {
                        key: "VISIT".into(),
                        value: "7".into(),
                    },
                    Card {
                        key: "SENSOR".into(),
                        value: "12".into(),
                    },
                ],
                data: plane(0.0, &[8, 10]),
            },
            Hdu {
                cards: vec![],
                data: plane(10_000.0, &[8, 10]),
            },
            Hdu {
                cards: vec![],
                data: plane(20_000.0, &[8, 10]),
            },
        ]
    }

    #[test]
    fn roundtrip_three_hdus() {
        let hdus = exposure();
        let buf = encode(&hdus);
        assert_eq!(buf.len() % BLOCK, 0);
        let back = decode(&buf).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in hdus.iter().zip(&back) {
            assert_eq!(a.data, b.data);
        }
        assert_eq!(back[0].value("VISIT"), Some("7"));
        assert_eq!(back[0].value_f64("SENSOR"), Some(12.0));
    }

    #[test]
    fn header_block_is_ascii_cards() {
        let buf = encode(&exposure());
        assert_eq!(&buf[..6], b"SIMPLE");
        // Every header byte in the first block is printable ASCII.
        assert!(buf[..BLOCK].iter().all(|&b| (0x20..0x7f).contains(&b)));
    }

    #[test]
    fn big_endian_payload() {
        let hdu = Hdu {
            cards: vec![],
            data: NdArray::from_vec(&[1, 1], vec![1.0f32]).unwrap(),
        };
        let buf = encode(std::slice::from_ref(&hdu));
        // 1.0f32 big-endian = 3F 80 00 00, at the start of the data block.
        assert_eq!(&buf[BLOCK..BLOCK + 4], &[0x3f, 0x80, 0x00, 0x00]);
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = encode(&exposure());
        buf.truncate(buf.len() - BLOCK);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn rejects_bad_first_card() {
        let mut buf = encode(&exposure());
        buf[0] = b'X';
        assert!(matches!(decode(&buf), Err(FormatError::BadMagic { .. })));
    }

    #[test]
    fn typed_roundtrip_with_u8_mask_plane() {
        // The use case's real layout: f32 flux + f32 variance + u8 mask.
        let mask = NdArray::from_fn(&[6, 9], |ix| ((ix[0] + ix[1]) % 3) as u8);
        let hdus = vec![
            TypedHdu {
                cards: vec![],
                data: ImageData::F32(plane(0.0, &[6, 9])),
            },
            TypedHdu {
                cards: vec![],
                data: ImageData::F32(plane(500.0, &[6, 9])),
            },
            TypedHdu {
                cards: vec![],
                data: ImageData::U8(mask.clone()),
            },
        ];
        let buf = encode_typed(&hdus);
        let back = decode_typed(&buf).unwrap();
        assert_eq!(back.len(), 3);
        assert!(matches!(back[0].data, ImageData::F32(_)));
        assert_eq!(back[2].data.to_u8(), mask);
        // The u8 plane is byte-exact and 4× smaller than a float plane.
        assert_eq!(back[2].data, ImageData::U8(mask));
        // The float decode path widens the mask losslessly for small ints.
        let widened = decode(&buf).unwrap();
        assert_eq!(widened[2].data.cast::<u8>(), hdus[2].data.to_u8());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("scibench_fits_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.fits");
        let hdus = exposure();
        write_file(&path, &hdus).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].data, hdus[1].data);
        std::fs::remove_file(&path).ok();
    }
}
