//! Property-based tests on the simulator's invariants: for arbitrary
//! random task graphs, the schedule must respect dependencies, lower
//! bounds, determinism and conservation of work.

use proptest::prelude::*;
use simcluster::{simulate, ClusterSpec, SchedPolicy, TaskGraph, TaskSpec};

#[derive(Debug, Clone)]
struct RandomTask {
    compute: f64,
    s3_mb: u16,
    output_mb: u16,
    deps_seed: u64,
    pinned: Option<u8>,
}

fn tasks() -> impl Strategy<Value = Vec<RandomTask>> {
    prop::collection::vec(
        (
            0.0f64..50.0,
            any::<u16>(),
            any::<u16>(),
            any::<u64>(),
            prop::option::of(0u8..16),
        )
            .prop_map(
                |(compute, s3_mb, output_mb, deps_seed, pinned)| RandomTask {
                    compute,
                    s3_mb: s3_mb % 100,
                    output_mb: output_mb % 100,
                    deps_seed,
                    pinned,
                },
            ),
        1..40,
    )
}

fn build(tasks: &[RandomTask]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, t) in tasks.iter().enumerate() {
        let mut spec = TaskSpec::compute("t", t.compute)
            .s3(t.s3_mb as u64 * 1_000_000)
            .output(t.output_mb as u64 * 1_000_000);
        if let Some(p) = t.pinned {
            spec = spec.on_node(p as usize % 4);
        }
        // Up to three random backward dependencies.
        if i > 0 {
            let mut seed = t.deps_seed | 1;
            for _ in 0..(t.deps_seed % 4) {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
                spec = spec.after(&[(seed as usize) % i]);
            }
        }
        g.add(spec);
    }
    g
}

fn policies() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        Just(SchedPolicy::LocalityFifo {
            per_task_overhead: 0.01
        }),
        Just(SchedPolicy::WorkStealing {
            per_task_overhead: 0.01,
            steal_cost: 0.1
        }),
        Just(SchedPolicy::Static {
            per_task_overhead: 0.01
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedule_respects_dependencies(ts in tasks(), policy in policies()) {
        let g = build(&ts);
        let cluster = ClusterSpec::r3_2xlarge(4);
        let r = simulate(&g, &cluster, policy, false).unwrap();
        for (i, task) in g.tasks().iter().enumerate() {
            for &d in &task.deps {
                prop_assert!(
                    r.timings[i].start + 1e-9 >= r.timings[d].finish,
                    "task {i} started {} before dep {d} finished {}",
                    r.timings[i].start,
                    r.timings[d].finish
                );
            }
        }
    }

    #[test]
    fn makespan_lower_bounds_hold(ts in tasks(), policy in policies()) {
        let g = build(&ts);
        let cluster = ClusterSpec::r3_2xlarge(4);
        let r = simulate(&g, &cluster, policy, false).unwrap();
        // The makespan is at least the dependency-chain compute length and
        // at least the total compute spread over all slots at best speed.
        prop_assert!(r.makespan + 1e-9 >= g.critical_path());
        let bound = g.total_compute() / cluster.total_slots() as f64;
        prop_assert!(r.makespan + 1e-9 >= bound);
        // And every task finished by the makespan.
        for t in &r.timings {
            prop_assert!(t.finish <= r.makespan + 1e-9);
        }
    }

    #[test]
    fn simulation_is_deterministic(ts in tasks(), policy in policies()) {
        let g = build(&ts);
        let cluster = ClusterSpec::r3_2xlarge(4);
        let a = simulate(&g, &cluster, policy, false).unwrap();
        let b = simulate(&g, &cluster, policy, false).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn busy_time_conserves_work(ts in tasks(), policy in policies()) {
        let g = build(&ts);
        let cluster = ClusterSpec::r3_2xlarge(4);
        let r = simulate(&g, &cluster, policy, false).unwrap();
        // Node busy time ≥ pure compute (slow-downs and I/O only add).
        let busy: f64 = r.node_busy.iter().sum();
        prop_assert!(busy + 1e-6 >= g.total_compute(), "busy {busy} < compute {}", g.total_compute());
        // S3 accounting is exact.
        let s3: u64 = g.tasks().iter().map(|t| t.s3_bytes).sum();
        prop_assert_eq!(r.bytes_from_s3, s3);
    }

    #[test]
    fn pinned_tasks_run_where_pinned(ts in tasks()) {
        let g = build(&ts);
        let cluster = ClusterSpec::r3_2xlarge(4);
        let r = simulate(&g, &cluster, SchedPolicy::Static { per_task_overhead: 0.0 }, false).unwrap();
        for (i, task) in g.tasks().iter().enumerate() {
            if let simcluster::Placement::Node(n) = task.placement {
                prop_assert_eq!(r.timings[i].node, n.min(cluster.nodes - 1), "task {}", i);
            }
        }
    }

    #[test]
    fn more_nodes_never_slow_things_down_much(ts in tasks()) {
        // Not strictly monotone (locality changes), but doubling the
        // cluster should never make an unpinned workload much slower.
        let unpinned: Vec<RandomTask> =
            ts.iter().cloned().map(|mut t| { t.pinned = None; t }).collect();
        let g = build(&unpinned);
        let policy = SchedPolicy::LocalityFifo { per_task_overhead: 0.01 };
        let small = simulate(&g, &ClusterSpec::r3_2xlarge(4), policy, false).unwrap();
        let large = simulate(&g, &ClusterSpec::r3_2xlarge(8), policy, false).unwrap();
        prop_assert!(large.makespan <= small.makespan * 1.10 + 1.0,
            "4 nodes: {}, 8 nodes: {}", small.makespan, large.makespan);
    }
}
