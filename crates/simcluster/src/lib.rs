#![warn(missing_docs)]

//! # simcluster — a discrete-event shared-nothing cluster simulator
//!
//! Models the paper's experimental platform — a cluster of Amazon EC2
//! r3.2xlarge nodes reading from S3 — so the 16–64-node, 100+ GB
//! experiments can be regenerated deterministically on one machine.
//!
//! The model is a task-graph list scheduler over explicit resources:
//!
//! * a [`ClusterSpec`] describes nodes (worker slots, memory, disk
//!   bandwidth), the network, and the object store;
//! * engines lower their query plans to a [`TaskGraph`] whose tasks carry
//!   compute seconds, S3/disk/network I/O bytes, memory footprints and
//!   placement constraints;
//! * [`simulate`] executes the graph under a [`SchedPolicy`] (locality-aware
//!   FIFO, work stealing with per-steal cost, or static placement) and
//!   returns a [`SimReport`] with the makespan, per-node utilization, peak
//!   memory and data-movement totals.
//!
//! Scheduling-policy differences — pipelining vs. barriers, shuffle
//! transfers, work-stealing overhead, master-funneled ingest — are exactly
//! the mechanisms the paper's analysis attributes performance differences
//! to, and all of them are expressible in this model.
//!
//! ```
//! use simcluster::{simulate, ClusterSpec, SchedPolicy, TaskGraph, TaskSpec};
//!
//! let mut g = TaskGraph::new();
//! let download = g.add(TaskSpec::compute("download", 0.0).s3(4_200_000_000).output(4_200_000_000));
//! for _ in 0..288 {
//!     g.add(TaskSpec::compute("denoise", 40.0).after(&[download]));
//! }
//! let cluster = ClusterSpec::r3_2xlarge(16);
//! let policy = SchedPolicy::LocalityFifo { per_task_overhead: 0.05 };
//! let report = simulate(&g, &cluster, policy, false).unwrap();
//! assert!(report.makespan > 40.0); // at least one denoise wave
//! assert_eq!(report.bytes_from_s3, 4_200_000_000);
//! ```

mod graph;
mod report;
mod sched;
mod sim;
mod spec;

pub use graph::{GraphViolation, Placement, TaskGraph, TaskId, TaskSpec};
pub use report::{SimError, SimReport, TaskTiming};
pub use sched::SchedPolicy;
pub use sim::{simulate, simulate_checked};
pub use spec::{ClusterSpec, NodeSpec};
