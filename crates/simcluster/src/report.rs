//! Simulation results.

/// Timing record for one executed task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTiming {
    /// The task's label.
    pub label: &'static str,
    /// Node it ran on.
    pub node: usize,
    /// Start time (seconds, includes queueing after readiness).
    pub start: f64,
    /// Finish time.
    pub finish: f64,
}

/// Why a simulated run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Concurrent resident memory on a node exceeded its capacity while the
    /// run demanded strict memory (pipelined execution without spilling).
    OutOfMemory {
        /// The node that ran out.
        node: usize,
        /// Virtual time of the failure.
        time: f64,
        /// Bytes demanded at that moment.
        demand_bytes: u64,
        /// The node's capacity.
        capacity_bytes: u64,
    },
    /// The graph failed structural validation
    /// ([`crate::TaskGraph::validate`]) before simulation started.
    InvalidGraph {
        /// The offending task.
        task: usize,
        /// The violation, in words.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory { node, time, demand_bytes, capacity_bytes } => write!(
                f,
                "out of memory on node {node} at t={time:.1}s: {demand_bytes} bytes demanded, {capacity_bytes} available"
            ),
            SimError::InvalidGraph { task, reason } => {
                write!(f, "invalid task graph: task {task}: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end virtual runtime in seconds.
    pub makespan: f64,
    /// Per-node total busy (slot-occupied) seconds.
    pub node_busy: Vec<f64>,
    /// Per-node peak concurrent resident memory in bytes.
    pub node_peak_mem: Vec<u64>,
    /// Total bytes downloaded from the object store.
    pub bytes_from_s3: u64,
    /// Total bytes moved over the network between nodes.
    pub bytes_over_network: u64,
    /// Total bytes read + written on local disks.
    pub bytes_on_disk: u64,
    /// Number of tasks executed away from their data-preferred node.
    pub tasks_stolen: usize,
    /// Per-task timings, in task-id order.
    pub timings: Vec<TaskTiming>,
}

impl SimReport {
    /// Mean slot utilization over the makespan: busy-seconds divided by
    /// (slots × makespan).
    pub fn utilization(&self, total_slots: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.node_busy.iter().sum();
        busy / (total_slots as f64 * self.makespan)
    }

    /// Peak memory across all nodes.
    pub fn peak_mem(&self) -> u64 {
        self.node_peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Sum of time spent by tasks whose label matches `label`.
    pub fn busy_for_label(&self, label: &str) -> f64 {
        self.timings
            .iter()
            .filter(|t| t.label == label)
            .map(|t| t.finish - t.start)
            .sum()
    }

    /// A textual per-label timeline: when each kind of task first started
    /// and last finished, with its total busy time — a quick way to see a
    /// schedule's phase structure without a full Gantt chart.
    pub fn timeline(&self) -> String {
        use std::collections::BTreeMap;
        // (first start, last finish, total busy, task count) per label.
        type Span = (f64, f64, f64, usize);
        let mut spans: BTreeMap<&'static str, Span> = BTreeMap::new();
        for t in &self.timings {
            let e = spans.entry(t.label).or_insert((f64::INFINITY, 0.0, 0.0, 0));
            e.0 = e.0.min(t.start);
            e.1 = e.1.max(t.finish);
            e.2 += t.finish - t.start;
            e.3 += 1;
        }
        let mut rows: Vec<(&'static str, Span)> = spans.into_iter().collect();
        rows.sort_by(|a, b| a.1 .0.total_cmp(&b.1 .0));
        let mut out = String::new();
        for (label, (first, last, busy, n)) in rows {
            out.push_str(&format!(
                "{label:<28} [{first:>9.1}s – {last:>9.1}s]  n={n:<6} busy={busy:.0} core-s\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_orders_phases_by_start() {
        let report = SimReport {
            makespan: 10.0,
            node_busy: vec![10.0],
            node_peak_mem: vec![0],
            bytes_from_s3: 0,
            bytes_over_network: 0,
            bytes_on_disk: 0,
            tasks_stolen: 0,
            timings: vec![
                TaskTiming {
                    label: "late",
                    node: 0,
                    start: 5.0,
                    finish: 10.0,
                },
                TaskTiming {
                    label: "early",
                    node: 0,
                    start: 0.0,
                    finish: 5.0,
                },
            ],
        };
        let tl = report.timeline();
        let early = tl.find("early").unwrap();
        let late = tl.find("late").unwrap();
        assert!(early < late, "phases ordered by first start:\n{tl}");
        assert!(tl.contains("busy=5 core-s"));
    }

    #[test]
    fn utilization_and_peaks() {
        let report = SimReport {
            makespan: 10.0,
            node_busy: vec![5.0, 10.0],
            node_peak_mem: vec![7, 3],
            bytes_from_s3: 0,
            bytes_over_network: 0,
            bytes_on_disk: 0,
            tasks_stolen: 0,
            timings: vec![],
        };
        assert!((report.utilization(2) - 0.75).abs() < 1e-12);
        assert_eq!(report.peak_mem(), 7);
    }
}
