//! Cluster hardware description.

/// One node's resources.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Physical cores (r3.2xlarge: 8 vCPU).
    pub cores: usize,
    /// Concurrent worker slots the engine runs on this node. More slots
    /// than cores over-subscribes the CPU (see [`NodeSpec::slot_speed`]).
    pub worker_slots: usize,
    /// Usable memory in bytes (r3.2xlarge: 61 GB).
    pub mem_bytes: u64,
    /// Local SSD sequential read bandwidth (bytes/s).
    pub disk_read_bw: f64,
    /// Local SSD sequential write bandwidth (bytes/s).
    pub disk_write_bw: f64,
    /// Measured intra-node scaling curve: `(busy_slots, aggregate_speedup)`
    /// points from a real kernel run (e.g. `scibench bench`'s
    /// `BENCH_kernels.json`), sorted by `busy_slots`. When present it
    /// replaces the analytic hyper-threading model in
    /// [`NodeSpec::slot_speed`]; between points the aggregate speedup is
    /// linearly interpolated, beyond the last point it is held flat.
    pub measured_scaling: Option<Vec<(usize, f64)>>,
}

impl NodeSpec {
    /// Physical cores: the r3.2xlarge's 8 vCPUs are 4 Ivy Bridge cores
    /// with hyper-threading.
    pub fn physical_cores(&self) -> usize {
        (self.cores / 2).max(1)
    }

    /// Relative execution speed of one busy slot when `busy_slots` run
    /// concurrently on this node.
    ///
    /// Up to the physical core count each slot runs at full speed. The
    /// hyper-threaded vCPUs add only ~15% throughput per extra slot for
    /// the memory-bandwidth-bound image kernels, *and* each extra slot
    /// adds cache/memory-bus interference — so aggregate throughput peaks
    /// at the physical core count and then declines. This is the
    /// Figure 13 mechanism: Myria's best configuration is 4 workers per
    /// 8-vCPU node, and 8 workers is strictly worse ("workers also compete
    /// for physical resources (memory, CPU, and disk IO)").
    /// Over-subscribing beyond the vCPU count degrades further.
    pub fn slot_speed(&self, busy_slots: usize) -> f64 {
        if busy_slots == 0 {
            return 1.0;
        }
        if let Some(curve) = &self.measured_scaling {
            if !curve.is_empty() {
                return Self::interp_aggregate(curve, busy_slots) / busy_slots as f64;
            }
        }
        let phys = self.physical_cores() as f64;
        let vcpu = self.cores as f64;
        let busy = busy_slots as f64;
        let aggregate = if busy <= phys {
            busy
        } else if busy <= vcpu {
            // Hyper-thread yield minus interference.
            (phys + 0.15 * (busy - phys)) * (1.0 - 0.05 * (busy - phys))
        } else {
            // Timesharing beyond the vCPUs: keep the vCPU-level aggregate
            // and shave 10% per doubling of over-subscription.
            let at_vcpu = (phys + 0.15 * (vcpu - phys)) * (1.0 - 0.05 * (vcpu - phys));
            (at_vcpu * (1.0 - 0.12 * (busy / vcpu - 1.0))).max(0.3 * at_vcpu)
        };
        aggregate / busy
    }

    /// Memory available to each worker slot.
    pub fn mem_per_slot(&self) -> u64 {
        self.mem_bytes / self.worker_slots.max(1) as u64
    }

    /// Aggregate throughput at `busy_slots` from a measured curve:
    /// piecewise-linear between points, flat beyond the ends.
    fn interp_aggregate(curve: &[(usize, f64)], busy_slots: usize) -> f64 {
        let busy = busy_slots as f64;
        let first = curve[0];
        let last = curve[curve.len() - 1];
        if busy_slots <= first.0 {
            // Below the first measurement, scale linearly from the origin:
            // 1 busy slot is by definition aggregate 1× the serial rate.
            if first.0 <= 1 {
                return first.1;
            }
            let per_slot = (first.1 - 1.0) / (first.0 - 1) as f64;
            return 1.0 + per_slot * (busy - 1.0);
        }
        if busy_slots >= last.0 {
            return last.1;
        }
        for pair in curve.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if busy_slots >= x0 && busy_slots <= x1 {
                let t = (busy - x0 as f64) / (x1 - x0) as f64;
                return y0 + t * (y1 - y0);
            }
        }
        last.1
    }
}

/// The full cluster plus its shared services (network, object store).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node resources.
    pub node: NodeSpec,
    /// Point-to-point network bandwidth per flow (bytes/s).
    pub net_bw: f64,
    /// One-way network latency (s).
    pub net_latency: f64,
    /// Object-store (S3) bandwidth of a single connection (bytes/s).
    pub s3_bw_per_conn: f64,
    /// Aggregate object-store bandwidth cap per node (bytes/s).
    pub s3_node_cap: f64,
    /// Object-store request latency (s).
    pub s3_latency: f64,
}

impl ClusterSpec {
    /// The paper's platform: r3.2xlarge — 8 vCPU (Ivy Bridge), 61 GB RAM,
    /// 160 GB SSD — with typical EC2-to-S3 characteristics.
    pub fn r3_2xlarge(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            node: NodeSpec {
                cores: 8,
                worker_slots: 8,
                mem_bytes: 61 * 1_000_000_000,
                disk_read_bw: 450e6,
                disk_write_bw: 380e6,
                measured_scaling: None,
            },
            net_bw: 120e6, // ~1 Gbps effective per flow
            net_latency: 0.5e-3,
            // 2016-era S3-to-EC2: ~25 MB/s per connection, ~60 MB/s
            // sustained per node across connections.
            s3_bw_per_conn: 25e6,
            s3_node_cap: 60e6,
            s3_latency: 30e-3,
        }
    }

    /// Same cluster with a different number of worker slots per node
    /// (the Figure 13 tuning knob).
    pub fn with_worker_slots(mut self, slots: usize) -> ClusterSpec {
        self.node.worker_slots = slots;
        self
    }

    /// Same cluster with a measured intra-node scaling curve replacing the
    /// analytic hyper-threading model (see [`NodeSpec::measured_scaling`]).
    /// Points must be sorted by slot count.
    pub fn with_measured_scaling(mut self, curve: Vec<(usize, f64)>) -> ClusterSpec {
        debug_assert!(
            curve.windows(2).all(|w| w[0].0 < w[1].0),
            "scaling curve must be sorted by slot count"
        );
        self.node.measured_scaling = Some(curve);
        self
    }

    /// Total worker slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.node.worker_slots
    }

    /// Effective S3 bandwidth for one task when `concurrent` downloads
    /// share a node.
    pub fn s3_rate(&self, concurrent: usize) -> f64 {
        self.s3_bw_per_conn
            .min(self.s3_node_cap / concurrent.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r3_matches_paper_hardware() {
        let c = ClusterSpec::r3_2xlarge(16);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.node.cores, 8);
        assert_eq!(c.node.mem_bytes, 61_000_000_000);
        assert_eq!(c.total_slots(), 128);
    }

    #[test]
    fn slot_speed_full_up_to_physical_cores() {
        let n = ClusterSpec::r3_2xlarge(1).node;
        assert_eq!(n.physical_cores(), 4);
        assert_eq!(n.slot_speed(1), 1.0);
        assert_eq!(n.slot_speed(4), 1.0);
        assert!(n.slot_speed(8) < 1.0);
    }

    #[test]
    fn aggregate_throughput_peaks_at_physical_cores() {
        // The Figure 13 U-shape: node throughput (busy × speed) is maximal
        // at 4 busy slots and strictly lower at 6, 8 and 16.
        let n = ClusterSpec::r3_2xlarge(1).node;
        let agg = |b: usize| b as f64 * n.slot_speed(b);
        assert!(agg(2) > agg(1));
        assert!(agg(4) > agg(2));
        assert!(agg(6) < agg(4), "{} vs {}", agg(6), agg(4));
        assert!(agg(8) < agg(6));
        assert!(agg(16) < agg(8));
    }

    #[test]
    fn s3_rate_caps_aggregate() {
        let c = ClusterSpec::r3_2xlarge(1);
        assert_eq!(c.s3_rate(1), 25e6);
        assert!(c.s3_rate(8) < 25e6);
        assert!((c.s3_rate(8) - 60e6 / 8.0).abs() < 1.0);
    }

    #[test]
    fn worker_slots_override() {
        let c = ClusterSpec::r3_2xlarge(16).with_worker_slots(4);
        assert_eq!(c.total_slots(), 64);
    }

    #[test]
    fn measured_scaling_overrides_analytic_model() {
        // A linear-scaling measurement: every slot runs at full speed.
        let c = ClusterSpec::r3_2xlarge(1).with_measured_scaling(vec![
            (1, 1.0),
            (2, 2.0),
            (4, 4.0),
            (8, 8.0),
        ]);
        for busy in [1usize, 2, 4, 8] {
            assert!((c.node.slot_speed(busy) - 1.0).abs() < 1e-12, "busy={busy}");
        }
        // A sublinear measurement interpolates between points and holds
        // flat beyond the last one.
        let c = ClusterSpec::r3_2xlarge(1).with_measured_scaling(vec![(2, 1.8), (4, 3.0)]);
        assert!((c.node.slot_speed(2) - 0.9).abs() < 1e-12);
        // busy=3 interpolates aggregate (1.8+3.0)/2 = 2.4 → speed 0.8.
        assert!((c.node.slot_speed(3) - 0.8).abs() < 1e-12);
        // Beyond the curve, aggregate stays 3.0 → per-slot speed declines.
        assert!((c.node.slot_speed(8) - 3.0 / 8.0).abs() < 1e-12);
        // Below the first point, interpolate from the serial anchor (1, 1.0).
        assert!((c.node.slot_speed(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_measured_curve_falls_back_to_analytic() {
        let mut c = ClusterSpec::r3_2xlarge(1);
        c.node.measured_scaling = Some(Vec::new());
        let reference = ClusterSpec::r3_2xlarge(1);
        for busy in [1usize, 4, 8, 16] {
            assert_eq!(c.node.slot_speed(busy), reference.node.slot_speed(busy));
        }
    }
}
