//! Task graphs: the lowering target of every engine.

/// Index of a task within its [`TaskGraph`].
pub type TaskId = usize;

/// Where a task may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Scheduler's choice (locality-aware policies prefer the node holding
    /// the most input bytes).
    Any,
    /// Pinned to one node (TensorFlow's explicit device placement, or a
    /// hash-partitioned relation's home worker).
    Node(usize),
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable label (step name), used in reports.
    pub label: &'static str,
    /// Pure compute time on one unloaded worker slot, in seconds.
    pub compute: f64,
    /// Bytes downloaded from the object store before compute starts.
    pub s3_bytes: u64,
    /// Bytes read from node-local disk.
    pub disk_read_bytes: u64,
    /// Bytes written to node-local disk.
    pub disk_write_bytes: u64,
    /// Size of the task's output, used for downstream transfer costs.
    pub output_bytes: u64,
    /// Peak resident memory while the task runs.
    pub mem_bytes: u64,
    /// Placement constraint.
    pub placement: Placement,
    /// Dependencies: tasks whose outputs this task consumes.
    pub deps: Vec<TaskId>,
    /// Control-only synchronization point: orders execution but moves no
    /// data (see [`TaskGraph::barrier`]).
    pub is_barrier: bool,
}

impl TaskSpec {
    /// A pure-compute task template.
    pub fn compute(label: &'static str, seconds: f64) -> TaskSpec {
        TaskSpec {
            label,
            compute: seconds,
            s3_bytes: 0,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            output_bytes: 0,
            mem_bytes: 0,
            placement: Placement::Any,
            deps: Vec::new(),
            is_barrier: false,
        }
    }

    /// Set the S3 input size.
    pub fn s3(mut self, bytes: u64) -> Self {
        self.s3_bytes = bytes;
        self
    }

    /// Set local disk read bytes.
    pub fn disk_read(mut self, bytes: u64) -> Self {
        self.disk_read_bytes = bytes;
        self
    }

    /// Set local disk write bytes.
    pub fn disk_write(mut self, bytes: u64) -> Self {
        self.disk_write_bytes = bytes;
        self
    }

    /// Set the output size.
    ///
    /// An output must fit in the task's resident memory: a spec declaring
    /// `output_bytes > mem_bytes` (with both set) describes a task that
    /// emits data it never held, which silently corrupts the memory
    /// analysis downstream. Debug builds reject it here.
    pub fn output(mut self, bytes: u64) -> Self {
        debug_assert!(
            self.mem_bytes == 0 || bytes <= self.mem_bytes,
            "task {:?}: output ({bytes} B) exceeds declared resident memory ({} B)",
            self.label,
            self.mem_bytes
        );
        self.output_bytes = bytes;
        self
    }

    /// Set the resident memory footprint (see [`TaskSpec::output`] for the
    /// output ≤ memory invariant enforced in debug builds).
    pub fn mem(mut self, bytes: u64) -> Self {
        debug_assert!(
            self.output_bytes == 0 || self.output_bytes <= bytes,
            "task {:?}: declared resident memory ({bytes} B) below output size ({} B)",
            self.label,
            self.output_bytes
        );
        self.mem_bytes = bytes;
        self
    }

    /// Pin to a node.
    pub fn on_node(mut self, node: usize) -> Self {
        self.placement = Placement::Node(node);
        self
    }

    /// Add dependencies.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }
}

/// A structural violation found by [`TaskGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphViolation {
    /// The offending task.
    pub task: TaskId,
    /// What is wrong with it, in words.
    pub reason: String,
}

impl std::fmt::Display for GraphViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {}: {}", self.task, self.reason)
    }
}

/// A DAG of [`TaskSpec`]s.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Add a task, returning its id. Dependencies must already exist
    /// (ids are insertion-ordered, so the graph is acyclic by
    /// construction).
    pub fn add(&mut self, task: TaskSpec) -> TaskId {
        let id = self.tasks.len();
        for &d in &task.deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        debug_assert!(
            !task.is_barrier || Self::barrier_is_data_free(&task),
            "barrier {:?} must not carry data (barriers synchronize; they do not move bytes)",
            task.label
        );
        self.tasks.push(task);
        id
    }

    /// Build a graph directly from a task list, bypassing the `add`-time
    /// ordering assertions. The result may be arbitrarily broken — forward
    /// dependencies, cycles, data-bearing barriers; [`TaskGraph::validate`]
    /// (or `simulate_checked`) is the gate. Exists so analysis tooling and
    /// tests can construct deliberately malformed graphs.
    pub fn from_tasks_unchecked(tasks: Vec<TaskSpec>) -> TaskGraph {
        TaskGraph { tasks }
    }

    fn barrier_is_data_free(t: &TaskSpec) -> bool {
        t.s3_bytes == 0
            && t.disk_read_bytes == 0
            && t.disk_write_bytes == 0
            && t.output_bytes == 0
            && t.mem_bytes == 0
    }

    /// Cheap structural validation: every dependency exists, no task
    /// depends on itself, the dependency relation is acyclic, and barriers
    /// carry no data. Graphs built through [`TaskGraph::add`] satisfy the
    /// first three by construction; graphs from
    /// [`TaskGraph::from_tasks_unchecked`] may not. Semantic checking
    /// (byte conservation, memory budgets, placement) lives in the
    /// `plancheck` crate.
    pub fn validate(&self) -> Result<(), GraphViolation> {
        let n = self.tasks.len();
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= n {
                    return Err(GraphViolation {
                        task: id,
                        reason: format!(
                            "depends on task {d}, which does not exist (graph has {n} tasks)"
                        ),
                    });
                }
                if d == id {
                    return Err(GraphViolation {
                        task: id,
                        reason: "depends on itself".into(),
                    });
                }
            }
            if t.is_barrier && !Self::barrier_is_data_free(t) {
                return Err(GraphViolation {
                    task: id,
                    reason: format!(
                        "barrier {:?} carries data; barriers must be byte-free",
                        t.label
                    ),
                });
            }
        }
        // Kahn's algorithm over the (now known-in-range) edges; anything
        // left unprocessed sits on a cycle.
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut consumers: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                consumers[d].push(id);
            }
        }
        let mut ready: Vec<TaskId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut processed = 0usize;
        while let Some(u) = ready.pop() {
            processed += 1;
            for &c in &consumers[u] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if processed < n {
            let on_cycle = indegree
                .iter()
                .enumerate()
                .find(|&(_, &d)| d > 0)
                .map(|(i, _)| i)
                .unwrap_or(0);
            return Err(GraphViolation {
                task: on_cycle,
                reason: "sits on a dependency cycle (no topological order exists)".into(),
            });
        }
        Ok(())
    }

    /// Add a zero-cost synchronization task depending on all of `deps` —
    /// a stage barrier (Spark shuffle boundary, TensorFlow step barrier).
    /// Barriers order execution but move no data and occupy no slot time.
    pub fn barrier(&mut self, label: &'static str, deps: &[TaskId]) -> TaskId {
        let mut t = TaskSpec::compute(label, 0.0).after(deps);
        t.is_barrier = true;
        self.add(t)
    }

    /// The tasks, by id.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total pure-compute seconds in the graph (a lower bound on
    /// work; makespan ≥ total_compute / total_slots).
    pub fn total_compute(&self) -> f64 {
        self.tasks.iter().map(|t| t.compute).sum()
    }

    /// Critical-path compute length (a lower bound on makespan).
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d]).fold(0.0, f64::max);
            finish[i] = ready + t.compute;
        }
        finish.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let t = TaskSpec::compute("x", 2.0)
            .s3(100)
            .output(50)
            .mem(80)
            .on_node(3)
            .after(&[]);
        assert_eq!(t.compute, 2.0);
        assert_eq!(t.s3_bytes, 100);
        assert_eq!(t.placement, Placement::Node(3));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "below output size"))]
    fn output_larger_than_mem_is_rejected_in_debug() {
        let t = TaskSpec::compute("x", 1.0).output(50).mem(10);
        // Release builds keep the (inconsistent) spec; debug builds panic
        // in `mem` above.
        assert_eq!(t.output_bytes, 50);
    }

    #[test]
    fn validate_accepts_built_graphs() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 1.0).after(&[a]));
        g.barrier("sync", &[a, b]);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn validate_finds_cycles_and_missing_deps() {
        let cyc = TaskGraph::from_tasks_unchecked(vec![
            TaskSpec::compute("a", 1.0).after(&[1]),
            TaskSpec::compute("b", 1.0).after(&[0]),
        ]);
        let v = cyc.validate().unwrap_err();
        assert!(v.reason.contains("cycle"), "{v}");

        let dangling =
            TaskGraph::from_tasks_unchecked(vec![TaskSpec::compute("a", 1.0).after(&[7])]);
        let v = dangling.validate().unwrap_err();
        assert!(v.reason.contains("does not exist"), "{v}");

        let selfdep =
            TaskGraph::from_tasks_unchecked(vec![TaskSpec::compute("a", 1.0).after(&[0])]);
        let v = selfdep.validate().unwrap_err();
        assert!(v.reason.contains("itself"), "{v}");
    }

    #[test]
    fn validate_rejects_data_bearing_barriers() {
        let mut bar = TaskSpec::compute("sync", 0.0);
        bar.is_barrier = true;
        bar.output_bytes = 10;
        let g = TaskGraph::from_tasks_unchecked(vec![bar]);
        let v = g.validate().unwrap_err();
        assert!(v.reason.contains("byte-free"), "{v}");
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 1.0).after(&[a]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("a", 1.0).after(&[5]));
    }

    #[test]
    fn critical_path_vs_total() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 3.0));
        let b = g.add(TaskSpec::compute("b", 1.0));
        let _c = g.add(TaskSpec::compute("c", 2.0).after(&[a, b]));
        assert_eq!(g.total_compute(), 6.0);
        assert_eq!(g.critical_path(), 5.0); // a → c
    }

    #[test]
    fn barrier_depends_on_all() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 2.0));
        let bar = g.barrier("sync", &[a, b]);
        assert_eq!(g.tasks()[bar].deps, vec![a, b]);
        assert_eq!(g.tasks()[bar].compute, 0.0);
    }
}
