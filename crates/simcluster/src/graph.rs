//! Task graphs: the lowering target of every engine.

/// Index of a task within its [`TaskGraph`].
pub type TaskId = usize;

/// Where a task may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Scheduler's choice (locality-aware policies prefer the node holding
    /// the most input bytes).
    Any,
    /// Pinned to one node (TensorFlow's explicit device placement, or a
    /// hash-partitioned relation's home worker).
    Node(usize),
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable label (step name), used in reports.
    pub label: &'static str,
    /// Pure compute time on one unloaded worker slot, in seconds.
    pub compute: f64,
    /// Bytes downloaded from the object store before compute starts.
    pub s3_bytes: u64,
    /// Bytes read from node-local disk.
    pub disk_read_bytes: u64,
    /// Bytes written to node-local disk.
    pub disk_write_bytes: u64,
    /// Size of the task's output, used for downstream transfer costs.
    pub output_bytes: u64,
    /// Peak resident memory while the task runs.
    pub mem_bytes: u64,
    /// Placement constraint.
    pub placement: Placement,
    /// Dependencies: tasks whose outputs this task consumes.
    pub deps: Vec<TaskId>,
    /// Control-only synchronization point: orders execution but moves no
    /// data (see [`TaskGraph::barrier`]).
    pub is_barrier: bool,
}

impl TaskSpec {
    /// A pure-compute task template.
    pub fn compute(label: &'static str, seconds: f64) -> TaskSpec {
        TaskSpec {
            label,
            compute: seconds,
            s3_bytes: 0,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            output_bytes: 0,
            mem_bytes: 0,
            placement: Placement::Any,
            deps: Vec::new(),
            is_barrier: false,
        }
    }

    /// Set the S3 input size.
    pub fn s3(mut self, bytes: u64) -> Self {
        self.s3_bytes = bytes;
        self
    }

    /// Set local disk read bytes.
    pub fn disk_read(mut self, bytes: u64) -> Self {
        self.disk_read_bytes = bytes;
        self
    }

    /// Set local disk write bytes.
    pub fn disk_write(mut self, bytes: u64) -> Self {
        self.disk_write_bytes = bytes;
        self
    }

    /// Set the output size.
    pub fn output(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    /// Set the resident memory footprint.
    pub fn mem(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Pin to a node.
    pub fn on_node(mut self, node: usize) -> Self {
        self.placement = Placement::Node(node);
        self
    }

    /// Add dependencies.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }
}

/// A DAG of [`TaskSpec`]s.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Add a task, returning its id. Dependencies must already exist
    /// (ids are insertion-ordered, so the graph is acyclic by
    /// construction).
    pub fn add(&mut self, task: TaskSpec) -> TaskId {
        let id = self.tasks.len();
        for &d in &task.deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        self.tasks.push(task);
        id
    }

    /// Add a zero-cost synchronization task depending on all of `deps` —
    /// a stage barrier (Spark shuffle boundary, TensorFlow step barrier).
    /// Barriers order execution but move no data and occupy no slot time.
    pub fn barrier(&mut self, label: &'static str, deps: &[TaskId]) -> TaskId {
        let mut t = TaskSpec::compute(label, 0.0).after(deps);
        t.is_barrier = true;
        self.add(t)
    }

    /// The tasks, by id.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total pure-compute seconds in the graph (a lower bound on
    /// work; makespan ≥ total_compute / total_slots).
    pub fn total_compute(&self) -> f64 {
        self.tasks.iter().map(|t| t.compute).sum()
    }

    /// Critical-path compute length (a lower bound on makespan).
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d]).fold(0.0, f64::max);
            finish[i] = ready + t.compute;
        }
        finish.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let t = TaskSpec::compute("x", 2.0).s3(100).output(50).mem(10).on_node(3).after(&[]);
        assert_eq!(t.compute, 2.0);
        assert_eq!(t.s3_bytes, 100);
        assert_eq!(t.placement, Placement::Node(3));
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 1.0).after(&[a]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("a", 1.0).after(&[5]));
    }

    #[test]
    fn critical_path_vs_total() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 3.0));
        let b = g.add(TaskSpec::compute("b", 1.0));
        let _c = g.add(TaskSpec::compute("c", 2.0).after(&[a, b]));
        assert_eq!(g.total_compute(), 6.0);
        assert_eq!(g.critical_path(), 5.0); // a → c
    }

    #[test]
    fn barrier_depends_on_all() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 2.0));
        let bar = g.barrier("sync", &[a, b]);
        assert_eq!(g.tasks()[bar].deps, vec![a, b]);
        assert_eq!(g.tasks()[bar].compute, 0.0);
    }
}
