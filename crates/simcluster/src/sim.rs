//! The list-scheduling discrete-event core.
//!
//! Greedy earliest-finish list scheduling: ready tasks are dispatched in
//! readiness order; each is placed on the worker slot minimizing its
//! estimated finish time (subject to placement pins and the policy's
//! locality/steal rules). Task duration combines dispatch overhead, S3
//! download (with per-node aggregate contention), local disk I/O, network
//! transfers of non-local inputs, and compute scaled by CPU
//! over-subscription and memory pressure.

use crate::graph::{Placement, TaskGraph};
use crate::report::{SimError, SimReport, TaskTiming};
use crate::sched::SchedPolicy;
use crate::spec::ClusterSpec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-worker bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Worker {
    free_at: f64,
    /// Memory held by the task currently occupying this worker (released at
    /// `free_at`).
    cur_mem: u64,
    cur_finish: f64,
    /// Whether the current task downloads from the object store (S3
    /// bandwidth is shared only among downloading tasks).
    cur_s3: bool,
}

/// Orders f64 keys inside the ready heap.
#[derive(Debug, PartialEq)]
struct ReadyKey(f64, usize);
impl Eq for ReadyKey {}
impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// [`simulate`], preceded by [`TaskGraph::validate`]: a structurally
/// invalid graph (cycle, dangling dependency, data-bearing barrier) is
/// reported as [`SimError::InvalidGraph`] instead of debug-panicking.
/// This is the entry point for graphs built from untrusted input, e.g.
/// via [`TaskGraph::from_tasks_unchecked`].
pub fn simulate_checked(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    policy: SchedPolicy,
    fail_if_over_memory: bool,
) -> Result<SimReport, SimError> {
    graph.validate().map_err(|v| SimError::InvalidGraph {
        task: v.task,
        reason: v.reason,
    })?;
    simulate(graph, cluster, policy, fail_if_over_memory)
}

/// Execute `graph` on `cluster` under `policy`.
///
/// With `fail_if_over_memory`, the run aborts with
/// [`SimError::OutOfMemory`] the first time a node's concurrent resident
/// memory would exceed its capacity — the behaviour of fully pipelined
/// execution without spilling (Myria in the paper's Figure 15). Otherwise
/// over-subscribed memory slows tasks down (thrashing) but never fails.
// scilint: allow(F001, simulate() validates the task graph up front; these invariants hold for every validated graph)
pub fn simulate(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    policy: SchedPolicy,
    fail_if_over_memory: bool,
) -> Result<SimReport, SimError> {
    #[cfg(debug_assertions)]
    if let Err(v) = graph.validate() {
        panic!("structurally invalid task graph handed to simulate(): {v}");
    }
    let tasks = graph.tasks();
    let n_tasks = tasks.len();
    let slots = cluster.node.worker_slots.max(1);
    let mut workers: Vec<Worker> = (0..cluster.nodes * slots)
        .map(|_| Worker {
            free_at: 0.0,
            cur_mem: 0,
            cur_finish: 0.0,
            cur_s3: false,
        })
        .collect();

    let mut remaining: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
    // Reverse adjacency so completions release dependents in O(edges).
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
    for (i, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            dependents[d].push(i);
        }
    }
    let mut finish = vec![0.0f64; n_tasks];
    let mut location: Vec<Option<usize>> = vec![None; n_tasks];
    let mut ready: BinaryHeap<Reverse<ReadyKey>> = BinaryHeap::new();
    for (i, t) in tasks.iter().enumerate() {
        if t.deps.is_empty() {
            ready.push(Reverse(ReadyKey(0.0, i)));
        }
    }

    let mut timings = vec![
        TaskTiming {
            label: "",
            node: 0,
            start: 0.0,
            finish: 0.0
        };
        n_tasks
    ];
    let mut node_busy = vec![0.0f64; cluster.nodes];
    let mut bytes_net = 0u64;
    let mut bytes_disk = 0u64;
    let mut bytes_s3 = 0u64;
    let mut stolen = 0usize;
    // (node, start, finish, mem) intervals for the post-hoc memory sweep.
    let mut mem_intervals: Vec<(usize, f64, f64, u64)> = Vec::new();
    let mut scheduled = 0usize;

    while let Some(Reverse(ReadyKey(ready_time, tid))) = ready.pop() {
        let task = &tasks[tid];

        // Control barriers complete instantly at their readiness time:
        // they synchronize, but move no data and hold no slot.
        if task.is_barrier {
            finish[tid] = ready_time;
            location[tid] = None;
            timings[tid] = TaskTiming {
                label: task.label,
                node: 0,
                start: ready_time,
                finish: ready_time,
            };
            scheduled += 1;
            for &j in &dependents[tid] {
                remaining[j] -= 1;
                if remaining[j] == 0 {
                    let r = tasks[j].deps.iter().map(|&d| finish[d]).fold(0.0, f64::max);
                    ready.push(Reverse(ReadyKey(r, j)));
                }
            }
            continue;
        }

        // The node holding the most input bytes — the locality preference.
        let preferred: Option<usize> = {
            let mut per_node: Vec<u64> = vec![0; cluster.nodes];
            let mut any = false;
            for &d in &task.deps {
                if let Some(n) = location[d] {
                    per_node[n] += tasks[d].output_bytes;
                    any = any || tasks[d].output_bytes > 0;
                }
            }
            any.then(|| {
                per_node
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &b)| b)
                    .map(|(n, _)| n)
                    .expect("at least one node")
            })
        };

        // Candidate nodes under the placement constraint.
        let candidates: Vec<usize> = match task.placement {
            Placement::Node(n) if policy.strict_placement() => vec![n.min(cluster.nodes - 1)],
            _ => (0..cluster.nodes).collect(),
        };

        // Pick the (node, worker) minimizing estimated finish; ties prefer
        // the preferred node, then lower node ids (determinism).
        let mut best: Option<(f64, usize, usize)> = None; // (est_finish, node, worker_ix)
        for &node in &candidates {
            // Earliest-free worker on this node.
            let (wix, w) = workers
                .iter()
                .enumerate()
                .skip(node * slots)
                .take(slots)
                .min_by(|(_, a), (_, b)| a.free_at.total_cmp(&b.free_at))
                .expect("slots >= 1");
            let start = ready_time.max(w.free_at);
            // Network input: dep outputs living on other nodes.
            let mut net_bytes = 0u64;
            for &d in &task.deps {
                if let Some(dn) = location[d] {
                    if dn != node {
                        net_bytes += tasks[d].output_bytes;
                    }
                }
            }
            let net_time = if net_bytes > 0 {
                net_bytes as f64 / cluster.net_bw + cluster.net_latency
            } else {
                0.0
            };
            let busy_now = workers[node * slots..(node + 1) * slots]
                .iter()
                .filter(|w2| w2.cur_finish > start)
                .count();
            let s3_time = if task.s3_bytes > 0 {
                let s3_busy = workers[node * slots..(node + 1) * slots]
                    .iter()
                    .filter(|w2| w2.cur_finish > start && w2.cur_s3)
                    .count();
                task.s3_bytes as f64 / cluster.s3_rate(s3_busy + 1) + cluster.s3_latency
            } else {
                0.0
            };
            let disk_time = task.disk_read_bytes as f64 / cluster.node.disk_read_bw
                + task.disk_write_bytes as f64 / cluster.node.disk_write_bw;
            let speed = cluster.node.slot_speed(busy_now + 1);
            // Memory pressure: concurrent resident bytes on the node.
            let mem_now: u64 = workers[node * slots..(node + 1) * slots]
                .iter()
                .filter(|w2| w2.cur_finish > start)
                .map(|w2| w2.cur_mem)
                .sum::<u64>()
                + task.mem_bytes;
            let thrash = if mem_now > cluster.node.mem_bytes {
                let r = mem_now as f64 / cluster.node.mem_bytes as f64;
                r * r
            } else {
                1.0
            };
            let steal = match preferred {
                Some(p) if p != node => policy.steal_cost(),
                _ => 0.0,
            };
            let duration = policy.per_task_overhead()
                + steal
                + net_time
                + s3_time
                + disk_time
                + task.compute * thrash / speed;
            let est_finish = start + duration;
            let better = match best {
                None => true,
                Some((bf, bn, _)) => {
                    est_finish < bf - 1e-12
                        || ((est_finish - bf).abs() <= 1e-12
                            && preferred == Some(node)
                            && preferred != Some(bn))
                }
            };
            if better {
                best = Some((est_finish, node, wix));
            }
        }

        let (est_finish, node, wix) = best.expect("at least one candidate node");
        let start = ready_time.max(workers[wix].free_at);

        if fail_if_over_memory {
            let mem_now: u64 = workers[node * slots..(node + 1) * slots]
                .iter()
                .filter(|w2| w2.cur_finish > start)
                .map(|w2| w2.cur_mem)
                .sum::<u64>()
                + task.mem_bytes;
            if mem_now > cluster.node.mem_bytes {
                return Err(SimError::OutOfMemory {
                    node,
                    time: start,
                    demand_bytes: mem_now,
                    capacity_bytes: cluster.node.mem_bytes,
                });
            }
        }

        // Commit the assignment.
        if let Some(p) = preferred {
            if p != node {
                stolen += 1;
            }
        }
        let mut net_bytes = 0u64;
        for &d in &task.deps {
            if let Some(dn) = location[d] {
                if dn != node {
                    net_bytes += tasks[d].output_bytes;
                }
            }
        }
        bytes_net += net_bytes;
        bytes_s3 += task.s3_bytes;
        bytes_disk += task.disk_read_bytes + task.disk_write_bytes;

        workers[wix].free_at = est_finish;
        workers[wix].cur_mem = task.mem_bytes;
        workers[wix].cur_finish = est_finish;
        workers[wix].cur_s3 = task.s3_bytes > 0;
        finish[tid] = est_finish;
        location[tid] = Some(node);
        node_busy[node] += est_finish - start;
        timings[tid] = TaskTiming {
            label: task.label,
            node,
            start,
            finish: est_finish,
        };
        if task.mem_bytes > 0 {
            mem_intervals.push((node, start, est_finish, task.mem_bytes));
        }
        scheduled += 1;

        // Release dependents.
        for &j in &dependents[tid] {
            remaining[j] -= 1;
            if remaining[j] == 0 {
                let r = tasks[j].deps.iter().map(|&d| finish[d]).fold(0.0, f64::max);
                ready.push(Reverse(ReadyKey(r, j)));
            }
        }
    }
    assert_eq!(scheduled, n_tasks, "cycle or unreachable tasks in graph");

    // Peak-memory sweep per node.
    let mut node_peak_mem = vec![0u64; cluster.nodes];
    {
        let mut events: Vec<(f64, usize, i64)> = Vec::with_capacity(mem_intervals.len() * 2);
        for &(node, s, f, m) in &mem_intervals {
            events.push((s, node, m as i64));
            events.push((f, node, -(m as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut cur = vec![0i64; cluster.nodes];
        for (_, node, delta) in events {
            cur[node] += delta;
            node_peak_mem[node] = node_peak_mem[node].max(cur[node].max(0) as u64);
        }
    }

    Ok(SimReport {
        makespan: finish.iter().copied().fold(0.0, f64::max),
        node_busy,
        node_peak_mem,
        bytes_from_s3: bytes_s3,
        bytes_over_network: bytes_net,
        bytes_on_disk: bytes_disk,
        tasks_stolen: stolen,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskSpec;

    fn cluster(nodes: usize) -> ClusterSpec {
        ClusterSpec::r3_2xlarge(nodes)
    }

    const FIFO: SchedPolicy = SchedPolicy::LocalityFifo {
        per_task_overhead: 0.0,
    };

    #[test]
    fn single_task_makespan_is_compute() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("t", 5.0));
        let r = simulate(&g, &cluster(2), FIFO, false).unwrap();
        assert_eq!(r.makespan, 5.0);
        assert_eq!(r.timings[0].finish, 5.0);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        // 16 tasks on 4 nodes: 4 busy slots per node = full speed.
        let mut g = TaskGraph::new();
        for _ in 0..16 {
            g.add(TaskSpec::compute("t", 1.0));
        }
        let r = simulate(&g, &cluster(4), FIFO, false).unwrap();
        assert!((r.makespan - 1.0).abs() < 1e-9, "makespan {}", r.makespan);
        // Using all 8 hyperthreaded slots still beats half the tasks' span.
        let mut g32 = TaskGraph::new();
        for _ in 0..32 {
            g32.add(TaskSpec::compute("t", 1.0));
        }
        let r32 = simulate(&g32, &cluster(4), FIFO, false).unwrap();
        assert!(
            r32.makespan > 1.0 && r32.makespan < 4.0,
            "makespan {}",
            r32.makespan
        );
    }

    #[test]
    fn more_nodes_speed_up() {
        let mut g = TaskGraph::new();
        for _ in 0..256 {
            g.add(TaskSpec::compute("t", 1.0));
        }
        let r16 = simulate(&g, &cluster(16), FIFO, false).unwrap();
        let r32 = simulate(&g, &cluster(32), FIFO, false).unwrap();
        // Doubling the cluster halves the makespan.
        assert!(
            (r16.makespan / r32.makespan - 2.0).abs() < 0.05,
            "{} vs {}",
            r16.makespan,
            r32.makespan
        );
    }

    #[test]
    fn chain_respects_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 2.0).after(&[a]));
        let _ = g.add(TaskSpec::compute("c", 3.0).after(&[b]));
        let r = simulate(&g, &cluster(4), FIFO, false).unwrap();
        assert_eq!(r.makespan, 6.0);
    }

    #[test]
    fn locality_avoids_network_transfer() {
        let mut g = TaskGraph::new();
        let producer = g.add(TaskSpec::compute("p", 1.0).output(1_000_000_000));
        g.add(TaskSpec::compute("c", 1.0).after(&[producer]));
        let r = simulate(&g, &cluster(4), FIFO, false).unwrap();
        assert_eq!(
            r.bytes_over_network, 0,
            "consumer should run on producer's node"
        );
        assert_eq!(r.timings[0].node, r.timings[1].node);
    }

    #[test]
    fn pinned_consumer_pays_transfer() {
        let mut g = TaskGraph::new();
        let producer = g.add(TaskSpec::compute("p", 1.0).output(120_000_000).on_node(0));
        g.add(TaskSpec::compute("c", 1.0).after(&[producer]).on_node(1));
        let r = simulate(
            &g,
            &cluster(2),
            SchedPolicy::Static {
                per_task_overhead: 0.0,
            },
            false,
        )
        .unwrap();
        assert_eq!(r.bytes_over_network, 120_000_000);
        // 120 MB over 120 MB/s ≈ 1 s extra.
        assert!(r.makespan > 2.9, "makespan {}", r.makespan);
    }

    #[test]
    fn s3_contention_slows_concurrent_downloads() {
        // One node: 8 concurrent 65 MB downloads share the 250 MB/s cap.
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add(TaskSpec::compute("dl", 0.0).s3(65_000_000));
        }
        let r = simulate(&g, &cluster(1), FIFO, false).unwrap();
        // Unconstrained: 1 s each. Shared: ≥ 8×65/250 ≈ 2.08 s total.
        assert!(r.makespan > 1.5, "makespan {}", r.makespan);
        assert_eq!(r.bytes_from_s3, 8 * 65_000_000);
    }

    #[test]
    fn oversubscription_slows_compute() {
        // 16 equal tasks: 4 slots (physical cores) beat 8 hyperthreaded
        // slots, which beat 16 oversubscribed slots — the Figure 13 shape.
        let mut g16 = TaskGraph::new();
        for _ in 0..16 {
            g16.add(TaskSpec::compute("t", 1.0));
        }
        let r4 = simulate(&g16, &cluster(1).with_worker_slots(4), FIFO, false).unwrap();
        let r8 = simulate(&g16, &cluster(1), FIFO, false).unwrap();
        let r16 = simulate(&g16, &cluster(1).with_worker_slots(16), FIFO, false).unwrap();
        assert!((r4.makespan - 4.0).abs() < 1e-9, "makespan {}", r4.makespan);
        assert!(
            r8.makespan > r4.makespan,
            "{} vs {}",
            r8.makespan,
            r4.makespan
        );
        assert!(
            r16.makespan > r8.makespan,
            "{} vs {}",
            r16.makespan,
            r8.makespan
        );
    }

    #[test]
    fn memory_thrash_slows_but_completes() {
        // Two concurrent 40 GB tasks on a 61 GB node: thrashing, not failure.
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("big", 10.0).mem(40_000_000_000));
        g.add(TaskSpec::compute("big", 10.0).mem(40_000_000_000));
        let r = simulate(&g, &cluster(1), FIFO, false).unwrap();
        assert!(r.makespan > 10.0 + 5.0, "no thrash penalty: {}", r.makespan);
        assert!(r.peak_mem() > 61_000_000_000);
    }

    #[test]
    fn strict_memory_fails() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("big", 10.0).mem(40_000_000_000));
        g.add(TaskSpec::compute("big", 10.0).mem(40_000_000_000));
        // Two nodes: each task fits on its own node, no failure.
        assert!(simulate(&g, &cluster(2), FIFO, true).is_ok());
        // One node with one slot: sequential, fits.
        let c1 = cluster(1).with_worker_slots(1);
        assert!(simulate(&g, &c1, FIFO, true).is_ok());
        // One node, 8 slots: they overlap and exceed 61 GB.
        let err = simulate(&g, &cluster(1), FIFO, true).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { node: 0, .. }));
    }

    #[test]
    fn work_stealing_pays_per_steal() {
        // Producer on node 0 makes 16 outputs; consumers outnumber node 0's
        // slots, so some run remotely and pay the steal cost.
        let mut g = TaskGraph::new();
        let mut producers = Vec::new();
        for _ in 0..16 {
            producers.push(g.add(TaskSpec::compute("p", 0.001).output(1000).on_node(0)));
        }
        for &p in &producers {
            g.add(TaskSpec::compute("c", 1.0).after(&[p]));
        }
        let steal = SchedPolicy::WorkStealing {
            per_task_overhead: 0.0,
            steal_cost: 0.5,
        };
        let r = simulate(&g, &cluster(2), steal, false).unwrap();
        assert!(r.tasks_stolen > 0, "expected steals");
        let fifo = simulate(&g, &cluster(2), FIFO, false).unwrap();
        assert!(r.makespan >= fifo.makespan, "steal cost not charged");
    }

    #[test]
    fn per_task_overhead_accumulates() {
        let mut g = TaskGraph::new();
        let mut prev = g.add(TaskSpec::compute("t", 0.1));
        for _ in 0..9 {
            prev = g.add(TaskSpec::compute("t", 0.1).after(&[prev]));
        }
        let r = simulate(
            &g,
            &cluster(1),
            SchedPolicy::LocalityFifo {
                per_task_overhead: 1.0,
            },
            false,
        )
        .unwrap();
        assert!((r.makespan - 11.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn barrier_serializes_stages() {
        let mut g = TaskGraph::new();
        let stage1: Vec<_> = (0..8)
            .map(|_| g.add(TaskSpec::compute("s1", 1.0)))
            .collect();
        let bar = g.barrier("sync", &stage1);
        for _ in 0..8 {
            g.add(TaskSpec::compute("s2", 1.0).after(&[bar]));
        }
        let r = simulate(&g, &cluster(1), FIFO, false).unwrap();
        // One stage alone:
        let mut g1 = TaskGraph::new();
        for _ in 0..8 {
            g1.add(TaskSpec::compute("s1", 1.0));
        }
        let r1 = simulate(&g1, &cluster(1), FIFO, false).unwrap();
        assert!(
            (r.makespan - 2.0 * r1.makespan).abs() < 1e-6,
            "{} vs 2×{}",
            r.makespan,
            r1.makespan
        );
    }

    #[test]
    fn report_bookkeeping() {
        let mut g = TaskGraph::new();
        g.add(
            TaskSpec::compute("io", 1.0)
                .disk_write(380_000_000)
                .disk_read(450_000_000),
        );
        let r = simulate(&g, &cluster(1), FIFO, false).unwrap();
        assert_eq!(r.bytes_on_disk, 830_000_000);
        // 1 s write + 1 s read + 1 s compute.
        assert!((r.makespan - 3.0).abs() < 1e-6);
        assert!((r.busy_for_label("io") - r.makespan).abs() < 1e-9);
    }
}
