//! Scheduling policies.

/// How ready tasks are mapped to worker slots.
///
/// Each variant models one of the evaluated systems' schedulers; the
/// per-task overhead is the engine's dispatch cost (serialization, RPC,
/// scheduler bookkeeping) and the steal cost models Dask's aggressive work
/// stealing, which the paper observed to erode efficiency at larger
/// cluster sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// Locality-aware FIFO slot scheduling (Spark, Myria): tasks prefer the
    /// node holding most of their input, otherwise take the earliest free
    /// slot and pay the network transfer.
    LocalityFifo {
        /// Seconds of dispatch overhead per task.
        per_task_overhead: f64,
    },
    /// Dynamic load balancing with work stealing (Dask): like
    /// `LocalityFifo`, but moving a task off its data-local node costs an
    /// extra `steal_cost` (task + metadata migration, rebalancing chatter).
    WorkStealing {
        /// Seconds of dispatch overhead per task.
        per_task_overhead: f64,
        /// Extra seconds whenever a task runs away from its input data.
        steal_cost: f64,
    },
    /// Programmer-specified static placement (TensorFlow, SciDB instance
    /// ownership): `Placement::Node` is honored strictly; unpinned tasks
    /// fall back to locality-FIFO behaviour.
    Static {
        /// Seconds of dispatch overhead per task.
        per_task_overhead: f64,
    },
}

impl SchedPolicy {
    /// The dispatch overhead this policy charges per task.
    pub fn per_task_overhead(&self) -> f64 {
        match *self {
            SchedPolicy::LocalityFifo { per_task_overhead }
            | SchedPolicy::WorkStealing {
                per_task_overhead, ..
            }
            | SchedPolicy::Static { per_task_overhead } => per_task_overhead,
        }
    }

    /// The cost of running a task away from its preferred node.
    pub fn steal_cost(&self) -> f64 {
        match *self {
            SchedPolicy::WorkStealing { steal_cost, .. } => steal_cost,
            _ => 0.0,
        }
    }

    /// Whether `Placement::Node` pins are strict.
    pub fn strict_placement(&self) -> bool {
        true // all current policies honor explicit pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = SchedPolicy::WorkStealing {
            per_task_overhead: 0.01,
            steal_cost: 0.2,
        };
        assert_eq!(p.per_task_overhead(), 0.01);
        assert_eq!(p.steal_cost(), 0.2);
        assert_eq!(
            SchedPolicy::LocalityFifo {
                per_task_overhead: 0.5
            }
            .steal_cost(),
            0.0
        );
    }
}
