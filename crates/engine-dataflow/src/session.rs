//! Graph execution.

use crate::graph::{BinaryOp, GraphBuilder, OpKind, TensorRef, UnaryOp, GRAPH_SIZE_LIMIT};
use marray::NdArray;
use std::collections::BTreeMap;

/// Errors raised by [`Session::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// The serialized graph exceeds the 2 GB limit.
    GraphTooLarge {
        /// The graph's serialized size.
        size: u64,
    },
    /// A placeholder was not fed.
    MissingFeed(usize),
    /// A fed tensor's shape does not match the placeholder.
    FeedShapeMismatch {
        /// The placeholder node id.
        node: usize,
        /// Declared shape.
        expected: Vec<usize>,
        /// Fed shape.
        got: Vec<usize>,
    },
    /// Two operands of a binary op have different shapes.
    ShapeMismatch(String),
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::GraphTooLarge { size } => {
                write!(
                    f,
                    "serialized graph is {size} bytes, over the {GRAPH_SIZE_LIMIT} limit"
                )
            }
            DataflowError::MissingFeed(n) => write!(f, "placeholder {n} was not fed"),
            DataflowError::FeedShapeMismatch {
                node,
                expected,
                got,
            } => {
                write!(
                    f,
                    "feed for node {node}: expected {expected:?}, got {got:?}"
                )
            }
            DataflowError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
        }
    }
}

impl std::error::Error for DataflowError {}

/// Executes graphs. All feeds enter through the master and all fetched
/// results return to it; the per-run barrier is implicit in `run`.
#[derive(Debug, Default)]
pub struct Session {
    runs: usize,
}

impl Session {
    /// New session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Number of `run` calls so far (each is a global barrier + master
    /// round-trip in the cost model).
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// Execute `graph`, feeding placeholders and returning the fetched
    /// tensors in order.
    // scilint: allow(F001, node inputs precede it in the plancheck-verified topological order; a missing value is a scheduler bug worth aborting on)
    pub fn run(
        &mut self,
        graph: &GraphBuilder,
        feeds: &BTreeMap<TensorRef, NdArray<f64>>,
        fetches: &[TensorRef],
    ) -> Result<Vec<NdArray<f64>>, DataflowError> {
        let size = graph.serialized_size();
        if size > GRAPH_SIZE_LIMIT {
            return Err(DataflowError::GraphTooLarge { size });
        }
        self.runs += 1;
        let mut values: Vec<Option<NdArray<f64>>> = vec![None; graph.nodes.len()];
        for (i, node) in graph.nodes.iter().enumerate() {
            let value = match &node.kind {
                OpKind::Placeholder { shape } => {
                    let fed = feeds
                        .get(&TensorRef(i))
                        .ok_or(DataflowError::MissingFeed(i))?;
                    if fed.dims() != shape.as_slice() {
                        return Err(DataflowError::FeedShapeMismatch {
                            node: i,
                            expected: shape.clone(),
                            got: fed.dims().to_vec(),
                        });
                    }
                    // scilint: allow(C001, feed handoff clones the NdArray handle - a ChunkBuf refcount bump)
                    fed.clone()
                }
                // scilint: allow(C001, constants are shared handles; clone is a refcount bump)
                OpKind::Constant { value } => value.clone(),
                OpKind::ReduceMean { axis } => values[node.inputs[0]]
                    .as_ref()
                    .expect("topo order")
                    .mean_axis(*axis),
                OpKind::ReduceSum { axis } => values[node.inputs[0]]
                    .as_ref()
                    .expect("topo order")
                    .sum_axis(*axis),
                OpKind::Gather { indices } => values[node.inputs[0]]
                    .as_ref()
                    .expect("topo order")
                    .take_axis(0, indices)
                    .map_err(|e| DataflowError::ShapeMismatch(e.to_string()))?,
                OpKind::Reshape { dims } => values[node.inputs[0]]
                    .as_ref()
                    .expect("topo order")
                    // scilint: allow(C001, refcount bump; reshape then moves the shared buffer zero-copy)
                    .clone()
                    .reshape(dims)
                    .map_err(|e| DataflowError::ShapeMismatch(e.to_string()))?,
                OpKind::Unary(op) => {
                    let a = values[node.inputs[0]].as_ref().expect("topo order");
                    match op {
                        UnaryOp::Sqrt => a.map(f64::sqrt),
                        UnaryOp::Neg => a.map(|v| -v),
                        UnaryOp::Exp => a.map(f64::exp),
                        UnaryOp::Abs => a.map(f64::abs),
                    }
                }
                OpKind::Binary(op) => {
                    let a = values[node.inputs[0]].as_ref().expect("topo order");
                    let b = values[node.inputs[1]].as_ref().expect("topo order");
                    apply_binary(*op, a, b)?
                }
                OpKind::ScalarOp(op, scalar) => {
                    let a = values[node.inputs[0]].as_ref().expect("topo order");
                    let s = *scalar;
                    match op {
                        BinaryOp::Add => a.map(|v| v + s),
                        BinaryOp::Sub => a.map(|v| v - s),
                        BinaryOp::Mul => a.map(|v| v * s),
                        BinaryOp::Div => a.map(|v| v / s),
                        BinaryOp::Max => a.map(|v| v.max(s)),
                        BinaryOp::Greater => a.map(|v| if v > s { 1.0 } else { 0.0 }),
                    }
                }
                OpKind::Conv3d { kernel } => {
                    let a = values[node.inputs[0]].as_ref().expect("topo order");
                    conv3d_same(a, kernel)
                }
                OpKind::Transpose { perm } => values[node.inputs[0]]
                    .as_ref()
                    .expect("topo order")
                    .permute_axes(perm)
                    .map_err(|e| DataflowError::ShapeMismatch(e.to_string()))?,
            };
            values[i] = Some(value);
        }
        Ok(fetches
            .iter()
            // scilint: allow(C001, fetch returns shared NdArray handles - refcount bumps per tensor)
            .map(|t| values[t.0].clone().expect("fetched node evaluated"))
            .collect())
    }
}

fn apply_binary(
    op: BinaryOp,
    a: &NdArray<f64>,
    b: &NdArray<f64>,
) -> Result<NdArray<f64>, DataflowError> {
    let f = move |x: f64, y: f64| match op {
        BinaryOp::Add => x + y,
        BinaryOp::Sub => x - y,
        BinaryOp::Mul => x * y,
        BinaryOp::Div => x / y,
        BinaryOp::Max => x.max(y),
        BinaryOp::Greater => {
            if x > y {
                1.0
            } else {
                0.0
            }
        }
    };
    a.zip_with(b, f)
        .map_err(|e| DataflowError::ShapeMismatch(e.to_string()))
}

/// Dense 3-D convolution with "same" zero padding.
fn conv3d_same(input: &NdArray<f64>, kernel: &NdArray<f64>) -> NdArray<f64> {
    assert_eq!(input.shape().rank(), 3, "conv3d input must be rank 3");
    let (nx, ny, nz) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (kx, ky, kz) = (kernel.dims()[0], kernel.dims()[1], kernel.dims()[2]);
    let (rx, ry, rz) = (kx / 2, ky / 2, kz / 2);
    let mut out = NdArray::<f64>::zeros(input.dims());
    let id = input.data();
    let kd = kernel.data();
    let (sy, sz) = (ny * nz, nz);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                let mut acc = 0.0;
                for i in 0..kx {
                    let xx = x as isize + i as isize - rx as isize;
                    if xx < 0 || xx >= nx as isize {
                        continue;
                    }
                    for j in 0..ky {
                        let yy = y as isize + j as isize - ry as isize;
                        if yy < 0 || yy >= ny as isize {
                            continue;
                        }
                        for k in 0..kz {
                            let zz = z as isize + k as isize - rz as isize;
                            if zz < 0 || zz >= nz as isize {
                                continue;
                            }
                            acc += id[xx as usize * sy + yy as usize * sz + zz as usize]
                                * kd[i * (ky * kz) + j * kz + k];
                        }
                    }
                }
                out.data_mut()[x * sy + y * sz + z] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(pairs: &[(TensorRef, NdArray<f64>)]) -> BTreeMap<TensorRef, NdArray<f64>> {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn mean_pipeline() {
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[2, 3]);
        let m = g.reduce_mean(p, 1);
        let mut s = Session::new();
        let input = NdArray::from_fn(&[2, 3], |ix| (ix[0] * 3 + ix[1]) as f64);
        let out = s.run(&g, &feed(&[(p, input)]), &[m]).unwrap();
        assert_eq!(out[0].data(), &[1.0, 4.0]);
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn gather_is_axis0_only_filter_axis3_needs_reshape() {
        // The paper's filter workaround: flatten the 4-D (x,y,z,v) array so
        // volumes come first, gather, reshape back.
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[2, 2, 2, 4]); // (x,y,z,volume)
                                              // Move the volume axis to the front by reshaping through 2-D:
                                              // [spatial, volumes] → transpose is unavailable, so the
                                              // implementation gathers flattened volume-major data fed in the
                                              // right layout. Here we emulate the paper's "flatten, select,
                                              // reshape" on a volume-major feed.
        let flat = g.reshape(p, &[2 * 2 * 2 * 4]);
        let back = g.reshape(flat, &[4, 2 * 2 * 2]); // volume-major view
        let sel = g.gather(back, &[0, 2]);
        let out = g.reshape(sel, &[2, 2, 2, 2]);
        let mut s = Session::new();
        // Feed volume-major data so the reshape sequence is valid.
        let input = NdArray::from_fn(&[2, 2, 2, 4], |ix| ix[3] as f64);
        // input is (x,y,z,v); after reshape to [4,8] rows are NOT volumes —
        // demonstrating why the real workaround is expensive. Feed a
        // volume-major tensor instead:
        let vol_major = NdArray::from_fn(&[2, 2, 2, 4], |ix| (ix[0] * 16) as f64 + ix[3] as f64);
        let _ = input;
        let r = s.run(&g, &feed(&[(p, vol_major)]), &[out]).unwrap();
        assert_eq!(r[0].dims(), &[2, 2, 2, 2]);
    }

    #[test]
    fn graph_size_limit_enforced() {
        let mut g = GraphBuilder::new();
        // Embed constants totalling > 2 GB of serialized payload: fake it
        // with a shape claim (zeros of 300M elements = 2.4 GB) — too big to
        // allocate cheaply, so use several moderate constants instead and
        // check the arithmetic threshold with a synthetic builder.
        let c = NdArray::<f64>::zeros(&[1_000_000]); // 8 MB each
        for _ in 0..16 {
            g.constant(c.clone());
        }
        assert!(g.serialized_size() > 128_000_000);
        // Still under the limit: runs fine.
        let mut s = Session::new();
        assert!(s.run(&g, &BTreeMap::new(), &[]).is_ok());
    }

    #[test]
    fn missing_feed_and_shape_mismatch() {
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[2, 2]);
        let m = g.reduce_mean(p, 0);
        let mut s = Session::new();
        assert_eq!(
            s.run(&g, &BTreeMap::new(), &[m]).unwrap_err(),
            DataflowError::MissingFeed(0)
        );
        let bad = NdArray::<f64>::zeros(&[3, 3]);
        assert!(matches!(
            s.run(&g, &feed(&[(p, bad)]), &[m]).unwrap_err(),
            DataflowError::FeedShapeMismatch { .. }
        ));
    }

    #[test]
    fn elementwise_and_scalar_ops() {
        let mut g = GraphBuilder::new();
        let a = g.placeholder(&[3]);
        let b = g.placeholder(&[3]);
        let sum = g.binary(BinaryOp::Add, a, b);
        let thresh = g.scalar_op(BinaryOp::Greater, sum, 4.0);
        let mut s = Session::new();
        let out = s
            .run(
                &g,
                &feed(&[
                    (a, NdArray::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap()),
                    (b, NdArray::from_vec(&[3], vec![1.0, 3.0, 5.0]).unwrap()),
                ]),
                &[thresh],
            )
            .unwrap();
        assert_eq!(out[0].data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn conv3d_identity_kernel() {
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[4, 4, 4]);
        let mut k = NdArray::<f64>::zeros(&[3, 3, 3]);
        k[&[1, 1, 1][..]] = 1.0;
        let c = g.conv3d(p, k);
        let mut s = Session::new();
        let input = NdArray::from_fn(&[4, 4, 4], |ix| (ix[0] + 2 * ix[1] + 4 * ix[2]) as f64);
        let out = s.run(&g, &feed(&[(p, input.clone())]), &[c]).unwrap();
        assert_eq!(out[0], input);
    }

    #[test]
    fn conv3d_box_kernel_smooths() {
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[5, 5, 5]);
        let k = NdArray::<f64>::full(&[3, 3, 3], 1.0 / 27.0);
        let c = g.conv3d(p, k);
        let mut s = Session::new();
        let mut input = NdArray::<f64>::full(&[5, 5, 5], 10.0);
        input[&[2, 2, 2][..]] = 1000.0;
        let out = s.run(&g, &feed(&[(p, input)]), &[c]).unwrap();
        let center = out[0][&[2, 2, 2][..]];
        assert!(center < 60.0, "speckle smoothed: {center}");
        // Interior far from the speckle stays ~10.
        assert!(
            (out[0][&[0, 0, 0][..]] - 10.0 * 8.0 / 27.0).abs() < 1e-9,
            "border zero-padded"
        );
    }

    #[test]
    fn transpose_then_gather_selects_volumes() {
        // The real form of the paper's axis-3 filter workaround: transpose
        // the (x,y,z,v) tensor to (v,x,y,z), gather along axis 0, transpose
        // back — three full data-movement passes.
        let mut g = GraphBuilder::new();
        let p = g.placeholder(&[2, 2, 2, 4]);
        let vm = g.transpose(p, &[3, 0, 1, 2]);
        let sel = g.gather(vm, &[1, 3]);
        let back = g.transpose(sel, &[1, 2, 3, 0]);
        let mut s = Session::new();
        let input = NdArray::from_fn(&[2, 2, 2, 4], |ix| (ix[3] * 10 + ix[0]) as f64);
        let out = s.run(&g, &feed(&[(p, input.clone())]), &[back]).unwrap();
        assert_eq!(out[0].dims(), &[2, 2, 2, 2]);
        // Output volume 0 is input volume 1; volume 1 is input volume 3.
        assert_eq!(out[0][&[1, 0, 0, 0][..]], input[&[1, 0, 0, 1][..]]);
        assert_eq!(out[0][&[1, 0, 0, 1][..]], input[&[1, 0, 0, 3][..]]);
    }

    #[test]
    fn no_masked_assignment_op_exists() {
        // Compile-time property of the API surface: OpKind has no masked
        // scatter/assignment variant. This test documents the paper's
        // constraint; constructing a masked denoise therefore requires
        // whole-tensor arithmetic over the full volume.
        let names = [
            "Placeholder",
            "Constant",
            "ReduceMean",
            "ReduceSum",
            "Gather",
            "Reshape",
            "Unary",
            "Binary",
            "ScalarOp",
            "Conv3d",
            "Transpose",
        ];
        assert_eq!(names.len(), 11);
    }
}
