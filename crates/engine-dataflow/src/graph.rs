//! Static graph construction.

use marray::NdArray;

/// Maximum serialized graph size: 2 GB, as in the system the paper
/// evaluated ("each compute graph must be smaller than 2GB when
/// serialized").
pub const GRAPH_SIZE_LIMIT: u64 = 2 * 1024 * 1024 * 1024;

/// Handle to a tensor-valued node in a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorRef(pub(crate) usize);

/// Element-wise unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Square root.
    Sqrt,
    /// Negation.
    Neg,
    /// Natural exponential.
    Exp,
    /// Absolute value.
    Abs,
}

/// Element-wise binary operations (also usable with a scalar operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Element-wise maximum.
    Max,
    /// Greater-than comparison, producing 0/1.
    Greater,
}

/// The operation of one graph node.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// Data fed at run time (shape fixed at build time).
    Placeholder {
        /// The tensor shape to be fed.
        shape: Vec<usize>,
    },
    /// A constant embedded in the graph (counts toward the 2 GB limit).
    Constant {
        /// The embedded tensor.
        value: NdArray<f64>,
    },
    /// Mean over one axis.
    ReduceMean {
        /// Axis to reduce.
        axis: usize,
    },
    /// Sum over one axis.
    ReduceSum {
        /// Axis to reduce.
        axis: usize,
    },
    /// Select rows along **axis 0 only** — the engine's only selection
    /// primitive.
    Gather {
        /// Row indices to keep.
        indices: Vec<usize>,
    },
    /// Reshape to new dims (element count preserved).
    Reshape {
        /// Target dims.
        dims: Vec<usize>,
    },
    /// Element-wise unary op.
    Unary(UnaryOp),
    /// Element-wise binary op over two same-shaped tensors.
    Binary(BinaryOp),
    /// Binary op against a scalar.
    ScalarOp(BinaryOp, f64),
    /// Dense 3-D convolution with "same" zero padding.
    Conv3d {
        /// The (odd-sized) kernel.
        kernel: NdArray<f64>,
    },
    /// Axis permutation (`tf.transpose`): a full data-movement pass — this
    /// is what makes "move the volume axis first, then gather" expensive.
    Transpose {
        /// `perm[i]` = source axis that becomes output axis `i`.
        perm: Vec<usize>,
    },
}

/// One node: operation + inputs + device assignment.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// The operation.
    pub kind: OpKind,
    /// Input node ids.
    pub inputs: Vec<usize>,
    /// The device (worker) the programmer placed this op on.
    pub device: usize,
}

/// Builds a static graph. Set the current device with
/// [`GraphBuilder::set_device`] (the `with tf.device(...)` idiom); every op
/// created afterwards is pinned there.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    pub(crate) nodes: Vec<OpNode>,
    device: usize,
}

impl GraphBuilder {
    /// Empty graph on device 0.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Set the device for subsequently created ops.
    pub fn set_device(&mut self, device: usize) {
        self.device = device;
    }

    fn push(&mut self, kind: OpKind, inputs: Vec<usize>) -> TensorRef {
        self.nodes.push(OpNode {
            kind,
            inputs,
            device: self.device,
        });
        TensorRef(self.nodes.len() - 1)
    }

    /// A run-time-fed input of fixed shape.
    pub fn placeholder(&mut self, shape: &[usize]) -> TensorRef {
        self.push(
            OpKind::Placeholder {
                shape: shape.to_vec(),
            },
            vec![],
        )
    }

    /// An embedded constant.
    pub fn constant(&mut self, value: NdArray<f64>) -> TensorRef {
        self.push(OpKind::Constant { value }, vec![])
    }

    /// Mean along `axis`.
    pub fn reduce_mean(&mut self, input: TensorRef, axis: usize) -> TensorRef {
        self.push(OpKind::ReduceMean { axis }, vec![input.0])
    }

    /// Sum along `axis`.
    pub fn reduce_sum(&mut self, input: TensorRef, axis: usize) -> TensorRef {
        self.push(OpKind::ReduceSum { axis }, vec![input.0])
    }

    /// Select `indices` along axis 0. Selection along any other axis is
    /// not expressible directly: reshape so the target axis is first.
    pub fn gather(&mut self, input: TensorRef, indices: &[usize]) -> TensorRef {
        self.push(
            OpKind::Gather {
                indices: indices.to_vec(),
            },
            vec![input.0],
        )
    }

    /// Reshape (element count must match at run time).
    pub fn reshape(&mut self, input: TensorRef, dims: &[usize]) -> TensorRef {
        self.push(
            OpKind::Reshape {
                dims: dims.to_vec(),
            },
            vec![input.0],
        )
    }

    /// Element-wise unary op.
    pub fn unary(&mut self, op: UnaryOp, input: TensorRef) -> TensorRef {
        self.push(OpKind::Unary(op), vec![input.0])
    }

    /// Element-wise binary op.
    pub fn binary(&mut self, op: BinaryOp, a: TensorRef, b: TensorRef) -> TensorRef {
        self.push(OpKind::Binary(op), vec![a.0, b.0])
    }

    /// Element-wise op against a scalar.
    pub fn scalar_op(&mut self, op: BinaryOp, input: TensorRef, scalar: f64) -> TensorRef {
        self.push(OpKind::ScalarOp(op, scalar), vec![input.0])
    }

    /// Axis permutation (a full data-movement pass).
    pub fn transpose(&mut self, input: TensorRef, perm: &[usize]) -> TensorRef {
        self.push(
            OpKind::Transpose {
                perm: perm.to_vec(),
            },
            vec![input.0],
        )
    }

    /// 3-D convolution with "same" zero padding (the denoising rewrite the
    /// paper describes: "we further rewrite Step 2N using convolutions").
    pub fn conv3d(&mut self, input: TensorRef, kernel: NdArray<f64>) -> TensorRef {
        assert_eq!(kernel.shape().rank(), 3, "conv3d kernel must be rank 3");
        assert!(
            kernel.dims().iter().all(|d| d % 2 == 1),
            "conv3d kernel dims must be odd"
        );
        self.push(OpKind::Conv3d { kernel }, vec![input.0])
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no ops have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialized size: per-node structure bytes plus embedded constants
    /// and gather index lists. This is what the 2 GB limit applies to.
    pub fn serialized_size(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                64 + n.inputs.len() as u64 * 8
                    + match &n.kind {
                        OpKind::Constant { value } => value.stored_nbytes() as u64,
                        OpKind::Conv3d { kernel } => kernel.stored_nbytes() as u64,
                        OpKind::Gather { indices } => indices.len() as u64 * 8,
                        OpKind::Transpose { perm } => perm.len() as u64 * 8,
                        OpKind::Placeholder { shape } | OpKind::Reshape { dims: shape } => {
                            shape.len() as u64 * 8
                        }
                        _ => 0,
                    }
            })
            .sum()
    }

    /// Device of an op (for lowering).
    pub fn device_of(&self, t: TensorRef) -> usize {
        self.nodes[t.0].device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_stick_to_ops() {
        let mut g = GraphBuilder::new();
        let a = g.placeholder(&[4]);
        g.set_device(3);
        let b = g.scalar_op(BinaryOp::Add, a, 1.0);
        assert_eq!(g.device_of(a), 0);
        assert_eq!(g.device_of(b), 3);
    }

    #[test]
    fn serialized_size_counts_constants() {
        let mut g = GraphBuilder::new();
        let small = g.serialized_size();
        g.constant(NdArray::zeros(&[1000]));
        assert!(g.serialized_size() >= small + 8000);
    }

    #[test]
    #[should_panic(expected = "rank 3")]
    fn conv3d_requires_rank3_kernel() {
        let mut g = GraphBuilder::new();
        let a = g.placeholder(&[4, 4]);
        g.conv3d(a, NdArray::zeros(&[3, 3]));
    }
}
