#![warn(missing_docs)]

//! # engine-dataflow — a static tensor dataflow engine (TensorFlow analog)
//!
//! Reproduces the architectural properties of TensorFlow the paper's
//! analysis rests on:
//!
//! * **Static dataflow graphs over N-d tensors** — build with
//!   [`GraphBuilder`], run with [`Session`]; nothing executes until
//!   `Session::run`.
//! * **Explicit device placement** — every op carries the device the
//!   programmer assigned ([`GraphBuilder::set_device`]); there is no
//!   automatic work assignment.
//! * **The 2 GB serialized-graph limit** — [`Session::run`] refuses graphs
//!   whose serialized form (structure + embedded constants) exceeds
//!   [`GRAPH_SIZE_LIMIT`], which forces one graph per pipeline step with a
//!   global barrier and master round-trip between steps.
//! * **Whole-tensor operations only** — there is deliberately *no* masked
//!   element-wise assignment (the denoising step cannot use the brain
//!   mask), and [`GraphBuilder::gather`] selects **only along axis 0**:
//!   filtering volumes on axis 3 requires the flatten→gather→reshape dance
//!   whose cost dominates Figure 12a.
//! * **Master-mediated I/O** — all ingest flows through the master and all
//!   results return to it ([`DataflowEngineProfile::master_mediated_io`]).

//! ```
//! use engine_dataflow::{GraphBuilder, Session};
//! use marray::NdArray;
//!
//! let mut g = GraphBuilder::new();
//! let p = g.placeholder(&[2, 3]);
//! let m = g.reduce_mean(p, 1);
//! let mut session = Session::new();
//! let input = NdArray::from_fn(&[2, 3], |ix| ix[1] as f64);
//! let out = session.run(&g, &[(p, input)].into_iter().collect(), &[m]).unwrap();
//! assert_eq!(out[0].data(), &[1.0, 1.0]);
//! ```

mod graph;
mod profile;
mod session;

pub use graph::{BinaryOp, GraphBuilder, OpKind, TensorRef, UnaryOp, GRAPH_SIZE_LIMIT};
pub use profile::DataflowEngineProfile;
pub use session::{DataflowError, Session};
