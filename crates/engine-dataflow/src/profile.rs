//! Architectural constants used when lowering dataflow graphs onto the
//! cluster simulator.

/// The TensorFlow-analog execution profile.
///
/// * `tensor_convert_per_byte` — NumPy↔tensor conversion at every step
///   boundary ("the master node converts between NumPy arrays and tensors
///   as needed"); this is the dominant cost in Figures 12b/12c.
/// * `master_mediated_io` — all ingest and results flow through the master
///   ("all data ingest goes through the master and results are always
///   returned to the master"), serializing ingest (Figure 11).
/// * `per_step_barrier` — one graph per pipeline step with a global
///   barrier between steps (the 2 GB graph limit forces this).
/// * `mask_support` — false: element-wise masked assignment is not
///   expressible, so denoising runs over whole volumes (≈1.5× the masked
///   compute, since the brain is ~2/3 of the volume).
/// * `filter_reshape_factor` — filtering along a non-leading axis costs a
///   flatten + gather + reshape pass over the whole tensor instead of a
///   metadata-only selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowEngineProfile {
    /// Conversion cost per byte between host arrays and tensors (s/B).
    pub tensor_convert_per_byte: f64,
    /// Fixed conversion/dispatch cost per step per worker (s).
    pub step_dispatch_fixed: f64,
    /// All ingest/results flow through the master.
    pub master_mediated_io: bool,
    /// A global barrier separates pipeline steps.
    pub per_step_barrier: bool,
    /// Masked element-wise computation is expressible.
    pub mask_support: bool,
    /// Full-tensor passes required to emulate a non-leading-axis filter.
    pub filter_reshape_passes: u32,
}

impl Default for DataflowEngineProfile {
    fn default() -> Self {
        DataflowEngineProfile {
            tensor_convert_per_byte: 1.0 / 180e6, // ~180 MB/s conversion
            step_dispatch_fixed: 0.05,
            master_mediated_io: true,
            per_step_barrier: true,
            mask_support: false,
            filter_reshape_passes: 3, // flatten + gather + reshape
        }
    }
}

impl DataflowEngineProfile {
    /// The statically checkable invariants of this engine's lowerings,
    /// consumed by [`plancheck::check`]: every operation has an explicit
    /// device placement (unpinned tasks are lowering bugs), and execution
    /// is staged behind per-step global barriers.
    pub fn invariants(&self) -> plancheck::InvariantProfile {
        plancheck::InvariantProfile {
            static_placement: true,
            barriers: plancheck::BarrierDiscipline::Staged,
            ..plancheck::InvariantProfile::new("TensorFlow")
        }
    }

    /// What each TensorFlow-analog task label executes, for the scimemo
    /// cacheability certifier (shared `astro:*`/`ingest:*`/step labels
    /// live in core's table).
    pub fn op_bindings(&self) -> &'static [plancheck::OpBinding] {
        TF_OPS
    }

    /// Extra compute multiplier for the denoise step caused by the missing
    /// mask support, given the mask's fill fraction.
    pub fn unmasked_inflation(&self, mask_fill_fraction: f64) -> f64 {
        if self.mask_support {
            1.0
        } else {
            (1.0 / mask_fill_fraction.clamp(1e-6, 1.0)).max(1.0)
        }
    }
}

const TF_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    const EMPTY: &[&str] = &[]; // pure data movement, no kernel runs
    [
        OpBinding::new("tf:step-barrier", OpClass::Infra),
        OpBinding::new("tf:master-download", OpClass::Source),
        OpBinding::new("tf:distribute", OpClass::Kernel(EMPTY)),
        OpBinding::new("tf:gather", OpClass::Kernel(EMPTY)),
        OpBinding::new("tf:filter", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("tf:mean", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("tf:mask-simplified", OpClass::Kernel(&["median_otsu"])),
        OpBinding::new("tf:denoise-conv", OpClass::Kernel(&["nlmeans3d"])),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_inflation_is_1_5x_for_two_thirds_brain() {
        let p = DataflowEngineProfile::default();
        assert!((p.unmasked_inflation(2.0 / 3.0) - 1.5).abs() < 1e-12);
        let masked = DataflowEngineProfile {
            mask_support: true,
            ..p
        };
        assert_eq!(masked.unmasked_inflation(0.5), 1.0);
    }
}
