//! F004 good fixture: the helper stays on the calling thread; no spawn is
//! reachable.

pub fn entry(xs: &mut [f64]) {
    helper(xs);
}

fn helper(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x += 1.0;
    }
}
