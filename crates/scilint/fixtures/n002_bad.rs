pub fn quantize(flux: f64) -> u32 {
    (flux * 1000.0) as u32
}
