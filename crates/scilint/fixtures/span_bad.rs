//! Suppression-span regression fixture (bad): the allow ends with its
//! statement; the second unwrap after it must still be reported.

pub fn escaped(values: &[Option<f64>]) -> f64 {
    // scilint: allow(H001, fixture: covers only the following statement)
    let first = values
        .first()
        .copied()
        .flatten()
        .unwrap();
    let second = values.last().copied().flatten().unwrap();
    first + second
}
