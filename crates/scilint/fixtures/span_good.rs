//! Suppression-span regression fixture (good): the allow covers the whole
//! multi-line chained statement, not just "this line and the next".

pub fn covered(values: &[Option<f64>]) -> f64 {
    // scilint: allow(H001, fixture: absence handled by the chained default two lines down)
    values
        .first()
        .copied()
        .flatten()
        .unwrap()
}
