#[test]
fn smooth_par_bit_identical_to_serial_twin() {
    let mut a = vec![1.0, 2.0, 3.0];
    let mut b = a.clone();
    smooth(&mut a);
    smooth_par(&mut b, Parallelism::threads(4));
    assert_eq!(a, b);
}
