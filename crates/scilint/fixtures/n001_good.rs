pub fn is_background(value: f64) -> bool {
    value.abs() < 1e-12
}
