pub fn is_zero(x: f64) -> bool {
    // scilint: allow(N001, exact-zero sentinel fixture with a written reason)
    x == 0.0
}
