// A data-plane helper that opens its own scratch file: disk traffic
// outside the governor's spill tier is unmetered (no spill/reload
// counters, no budget accounting), so C002 must fire on each I/O token.
pub fn stash(values: &[f64]) -> std::io::Result<()> {
    let path = std::env::temp_dir().join("scratch.bin");
    let mut file = std::fs::File::create(&path)?;
    use std::io::Write as _;
    for v in values {
        file.write_all(&v.to_le_bytes())?;
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
