//! F002 good fixture: the clock read carries a justified D002 allow, which
//! sanctions the sink at the source — nothing seeds the nondet effect.

pub fn entry() -> u128 {
    helper()
}

fn helper() -> u128 {
    // scilint: allow(D002, fixture: observational timing that never feeds a result payload)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
