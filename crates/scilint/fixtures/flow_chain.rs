//! Two-hop transitive fixture: the panic sink is two calls away from the
//! root; the witness chain must read root -> mid -> leaf.

pub fn chain_entry(xs: &[i64]) -> i64 {
    mid(xs)
}

fn mid(xs: &[i64]) -> i64 {
    leaf(xs)
}

fn leaf(xs: &[i64]) -> i64 {
    *xs.first().expect("chain fixture input")
}
