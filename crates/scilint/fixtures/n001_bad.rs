pub fn is_background(value: f64) -> bool {
    value == 0.0
}
