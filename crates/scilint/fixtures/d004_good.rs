pub fn scale_par(xs: &mut [f64], k: f64, par: Parallelism) {
    par_chunks_mut(xs, par, |chunk| {
        for x in chunk {
            *x *= k;
        }
    });
}
