pub fn tick_tag(counter: &mut u64) -> u64 {
    *counter += 1;
    *counter
}
