pub fn encode_runs(chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    // Inside an encode() boundary the dense-payload walk IS the codec:
    // the bytes are read once to build the run table, and the codec
    // counter meters the copy.
    chunks.iter().map(|chunk| chunk.clone()).collect()
}

pub fn decode_chunk(chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    // Likewise decode() expanding runs back into a dense buffer.
    chunks.iter().map(|chunk| chunk.clone()).collect()
}
