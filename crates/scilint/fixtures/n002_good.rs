pub fn widen(sample: f32) -> f64 {
    f64::from(sample)
}
