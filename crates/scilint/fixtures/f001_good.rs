//! F001 good fixture: the helper surfaces absence as an Option and the
//! entry point handles it; no panic sink is reachable.

pub fn entry(values: &[f64]) -> f64 {
    helper(values).unwrap_or(0.0)
}

fn helper(values: &[f64]) -> Option<f64> {
    values.first().copied()
}
