// scilint: allow(D001)
use std::collections::HashMap;

pub fn lookup() -> HashMap<u64, u64> {
    HashMap::new()
}
