// The sanctioned shape: hand the buffer to the governor and let its
// spill tier decide when (and in what representation) bytes hit disk.
pub fn stash(values: &NdArray<f64>) -> NdArray<f64> {
    values.govern()
}
