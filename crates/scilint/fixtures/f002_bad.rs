//! F002 bad fixture: a clock read buried in a helper reachable from a pub
//! entry point.

pub fn entry() -> u128 {
    helper()
}

fn helper() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
