use std::collections::BTreeMap;

pub fn index(keys: &[u64]) -> BTreeMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}
