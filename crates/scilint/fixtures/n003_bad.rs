pub fn total(xs: &[f32]) -> f32 {
    let mut acc: f32 = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}
