pub fn stamp() -> u128 {
    // scilint: allow(D002, fixture timing a fixture - the clock read is the point)
    std::time::Instant::now().elapsed().as_nanos()
}
