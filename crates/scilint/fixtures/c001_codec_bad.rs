pub fn repack(chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    // A representation change outside the codec boundary: the payload walk
    // is unmetered, so C001 must flag it.
    chunks.iter().map(|chunk| chunk.clone()).collect()
}
