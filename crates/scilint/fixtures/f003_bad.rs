//! F003 bad fixture: a helper deep-copies a chunk payload and is reachable
//! from a pub entry point (interprocedural C001).

pub fn entry(chunk: &[f64]) -> Vec<f64> {
    helper(chunk)
}

fn helper(chunk: &[f64]) -> Vec<f64> {
    chunk.to_vec()
}
