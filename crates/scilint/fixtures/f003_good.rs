//! F003 good fixture: the copy happens inside a `materialize*` function,
//! the sanctioned deep-copy point of the copy-discipline contract.

pub fn entry(chunk: &[f64]) -> Vec<f64> {
    materialize_chunk(chunk)
}

fn materialize_chunk(chunk: &[f64]) -> Vec<f64> {
    chunk.to_vec()
}
