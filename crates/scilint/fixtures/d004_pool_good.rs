// The sanctioned shape: route the work through the MorselPool (which owns
// the only spawn site) instead of spawning around it.
pub fn drain(items: &[f64], par: Parallelism) -> Vec<f64> {
    MorselPool::new(par).map(items, |_, x| x * 2.0)
}
