// scilint: allow(D001, fixture demonstrating a justified suppression of a lookup-only map)
use std::collections::HashMap;

pub fn touch() {}
