//! Item-scoped suppression fixture: one allow above the `fn` covers every
//! sink inside its body, the way an `#[allow]` attribute would.

// scilint: allow(F001, fixture: whole-fn boundary; both expects are the engine contract)
pub fn entry(xs: &[i64]) -> i64 {
    let first = *xs.first().expect("boundary fixture input");
    let last = *xs.last().expect("boundary fixture input");
    first + last
}
