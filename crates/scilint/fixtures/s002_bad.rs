// scilint: allow(Z999, this rule id does not exist)
pub fn touch() {}
