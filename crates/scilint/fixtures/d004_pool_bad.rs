// A parexec helper that spawns its own workers around the MorselPool:
// claim order would no longer be the pool's, so D004 must fire even though
// the function is not a `_par` kernel.
pub fn drain(items: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; items.len()];
    std::thread::scope(|scope| {
        for (slot, x) in out.iter_mut().zip(items) {
            scope.spawn(move || *slot = x * 2.0);
        }
    });
    out
}
