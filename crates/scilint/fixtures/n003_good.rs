pub fn total(xs: &[f32]) -> f64 {
    let mut acc: f64 = 0.0;
    for &x in xs {
        acc += f64::from(x);
    }
    acc
}
