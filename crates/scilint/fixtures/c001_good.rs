pub fn materialize_result(chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    // Inside a materialize() entry point a wholesale copy is the
    // sanctioned architectural rewrite, not a leak.
    chunks.iter().map(|chunk| chunk.clone()).collect()
}

pub fn reshuffle(handles: &[std::sync::Arc<Vec<f64>>]) -> Vec<std::sync::Arc<Vec<f64>>> {
    // Cloning the handle, not the payload: a refcount bump.
    handles.iter().map(|h| std::sync::Arc::clone(h)).collect()
}
