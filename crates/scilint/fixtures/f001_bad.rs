//! F001 bad fixture: a panic sink one call away from a pub entry point.
//! `expect()` passes the token rules (H001 flags only `unwrap()`), so only
//! the interprocedural pass can see that `entry`'s result path may abort.

pub fn entry(values: &[f64]) -> f64 {
    helper(values)
}

fn helper(values: &[f64]) -> f64 {
    values.first().copied().expect("non-empty input")
}
