pub fn elapsed_tag() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}
