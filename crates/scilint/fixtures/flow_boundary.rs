//! Suppressed-boundary fixture: the sink carries a reasoned F001 allow on
//! its own statement, so the chain-anchored finding is consumed without
//! going S003-stale.

pub fn entry(xs: &[i64]) -> i64 {
    boundary(xs)
}

fn boundary(xs: &[i64]) -> i64 {
    // scilint: allow(F001, fixture: sanctioned boundary abort on empty input)
    *xs.first().expect("boundary fixture input")
}
