pub fn smooth(xs: &mut [f64]) {
    for x in xs {
        *x *= 0.5;
    }
}

pub fn smooth_par(xs: &mut [f64], par: Parallelism) {
    par_chunks_mut(xs, par, |chunk| {
        for x in chunk {
            *x *= 0.5;
        }
    });
}
