pub fn reshuffle(chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for chunk in chunks {
        out.push(chunk.clone());
    }
    out.push(chunks.concat().to_vec());
    out
}
