// scilint: allow(D002, nothing on the next line reads the clock)
pub fn touch() {}
