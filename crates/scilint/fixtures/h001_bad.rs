pub fn first_byte(buf: &[u8]) -> u8 {
    *buf.first().unwrap()
}
