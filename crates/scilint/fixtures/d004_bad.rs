pub fn scale_par(xs: &mut [f64], k: f64) {
    std::thread::scope(|scope| {
        for chunk in xs.chunks_mut(64) {
            scope.spawn(move || {
                for x in chunk {
                    *x *= k;
                }
            });
        }
    });
}
