//! F004 bad fixture: a thread spawn outside parexec/src/morsel.rs,
//! reachable from a pub entry point.

pub fn entry(xs: &mut [f64]) {
    helper(xs);
}

fn helper(xs: &mut [f64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(move || *x += 1.0);
        }
    });
}
