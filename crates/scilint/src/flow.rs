//! sciflow: interprocedural effect propagation over the approximate call
//! graph, with witness call chains.
//!
//! The token rules (D/N/H/C) see one file at a time; a helper that calls
//! `expect()` two crates away passes them even when every engine result
//! path runs through it. This pass closes that gap: every function is
//! tagged with the effect lattice {`panics`, `nondet`, `copies`, `spawns`}
//! seeded from the same sinks the token rules recognize, effects flow
//! caller-ward to a fixed point, and four rules fire on sinks *reachable
//! from an engine/kernel/pipeline entry point*:
//!
//! * **F001** — a panic sink (`panic!`/`unwrap()`/`expect()`/...) on a
//!   result path,
//! * **F002** — a transitive nondeterminism source (hash-order iteration,
//!   clock reads, ambient randomness),
//! * **F003** — a transitive unsanctioned payload copy (interprocedural
//!   C001),
//! * **F004** — a thread spawn outside `parexec/src/morsel.rs`, the
//!   workspace's single sanctioned spawn site.
//!
//! Each finding is anchored at the **sink line** — one justified
//! `// scilint: allow(F00x, reason)` there covers every chain that reaches
//! the sink — and carries the **shortest witness chain** root → … → sink,
//! computed by a deterministic multi-source BFS from the root set. A sink
//! already covered by the corresponding token-rule allow (H001 for panics,
//! D001/D002/D003 for nondet, C001 for copies, D004 for spawns) is treated
//! as sanctioned at the source and seeds nothing.
//!
//! Determinism contract: function ids are assigned in sorted (path, token)
//! order, all sets are `BTreeSet`/`BTreeMap`, the BFS visits neighbors in
//! id order, and ties break by (path, line) — two runs over the same tree
//! emit byte-identical reports.

use std::collections::BTreeMap;

use crate::callgraph;
use crate::lex::TokenKind;
use crate::profiles;
use crate::rules::{self, Finding};
use crate::source::SourceFile;
use crate::symbols::{self, SymbolTable};

/// One effect in the lattice. The discriminant is the bitmask position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// May panic (macro or `unwrap`/`expect`).
    Panics = 0,
    /// May observe hash order, the clock, or ambient randomness.
    Nondet = 1,
    /// May deep-copy a chunk payload outside `materialize()`.
    Copies = 2,
    /// May spawn a thread outside the sanctioned morsel pool.
    Spawns = 3,
}

/// All effects, in report order.
pub const EFFECTS: [Effect; 4] = [
    Effect::Panics,
    Effect::Nondet,
    Effect::Copies,
    Effect::Spawns,
];

impl Effect {
    /// Bitmask bit for this effect.
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// The F-rule that reports this effect.
    pub fn rule(self) -> &'static str {
        match self {
            Effect::Panics => "F001",
            Effect::Nondet => "F002",
            Effect::Copies => "F003",
            Effect::Spawns => "F004",
        }
    }

    /// Lattice element name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Panics => "panics",
            Effect::Nondet => "nondet",
            Effect::Copies => "copies",
            Effect::Spawns => "spawns",
        }
    }

    /// Token rules whose `allow` sanctions a sink of this effect at the
    /// source (the allow's reason covers the interprocedural story too).
    fn sanctioning_rules(self) -> &'static [&'static str] {
        match self {
            Effect::Panics => &["H001"],
            Effect::Nondet => &["D001", "D002", "D003"],
            Effect::Copies => &["C001"],
            Effect::Spawns => &["D004"],
        }
    }
}

/// One effect sink: the concrete token that seeds an effect.
#[derive(Debug, Clone)]
struct Sink {
    /// Function the sink sits in (id into [`SymbolTable::fns`]).
    owner: u32,
    /// Which effect it seeds.
    effect: Effect,
    /// 1-based line of the sink token.
    line: u32,
    /// Short description (`.expect()`, `HashMap`, ...).
    what: String,
}

/// One hop of a witness call chain.
#[derive(Debug, Clone)]
pub struct ChainHop {
    /// Function name.
    pub name: String,
    /// Workspace-relative path of its definition.
    pub path: String,
    /// Line of the `fn` token.
    pub line: u32,
}

/// One interprocedural finding with its witness chain.
#[derive(Debug, Clone)]
pub struct FlowFinding {
    /// `F001`..`F004`.
    pub rule: &'static str,
    /// The effect that fired.
    pub effect: Effect,
    /// Crate of the *sink*.
    pub crate_name: String,
    /// Path of the sink file (where the allow belongs).
    pub path: String,
    /// Line of the sink token.
    pub line: u32,
    /// Sink description (`.expect()`, `spawn(`, ...).
    pub sink: String,
    /// Shortest witness chain, root first, sink-owning function last.
    pub chain: Vec<ChainHop>,
    /// Rendered message (chain included) for the unified report.
    pub message: String,
}

impl FlowFinding {
    /// Downgrade to a plain [`Finding`] for the unified gate.
    pub fn to_finding(&self) -> Finding {
        Finding {
            rule: self.rule,
            path: self.path.clone(),
            crate_name: self.crate_name.clone(),
            line: self.line,
            message: self.message.clone(),
        }
    }
}

/// Workspace-level statistics for the `sciflow/v1` report.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Functions in the symbol table.
    pub functions: usize,
    /// Call-graph edges.
    pub edges: usize,
    /// Entry points (pub fns of the root crates).
    pub roots: usize,
    /// Functions tagged with each effect after propagation, by name.
    pub tagged: BTreeMap<&'static str, usize>,
}

/// Run the full flow analysis. Returns the findings (unsuppressed — the
/// report layer applies `allow(F00x)` filtering) and the stats.
pub fn analyze(files: &[SourceFile]) -> (Vec<FlowFinding>, FlowStats) {
    let tab = symbols::extract(files, &|krate| !profiles::flow_exempt(krate));
    let graph = callgraph::build(&tab);
    let sinks = find_sinks(files, &tab);

    // Fixed-point effect propagation, callee → caller, via a worklist over
    // the reverse graph.
    let mut masks = vec![0u8; tab.fns.len()];
    for s in &sinks {
        masks[s.owner as usize] |= s.effect.bit();
    }
    let rev = graph.reversed();
    let mut work: Vec<u32> = (0..tab.fns.len() as u32)
        .filter(|&f| masks[f as usize] != 0)
        .collect();
    while let Some(f) = work.pop() {
        let m = masks[f as usize];
        for &caller in &rev[f as usize] {
            let before = masks[caller as usize];
            if before | m != before {
                masks[caller as usize] = before | m;
                work.push(caller);
            }
        }
    }

    // Deterministic multi-source BFS from the root set, recording parents
    // for shortest witness chains. Roots and neighbors are visited in id
    // order; ids are already sorted by (path, token position).
    let roots: Vec<u32> = (0..tab.fns.len() as u32)
        .filter(|&f| {
            let sym = &tab.fns[f as usize];
            sym.is_pub && profiles::flow_root(&sym.crate_name)
        })
        .collect();
    let mut parent: Vec<Option<u32>> = vec![None; tab.fns.len()];
    let mut seen = vec![false; tab.fns.len()];
    let mut queue: std::collections::VecDeque<u32> = roots.iter().copied().collect();
    for &r in &roots {
        seen[r as usize] = true;
    }
    while let Some(f) = queue.pop_front() {
        for &callee in &graph.edges[f as usize] {
            if !seen[callee as usize] {
                seen[callee as usize] = true;
                parent[callee as usize] = Some(f);
                queue.push_back(callee);
            }
        }
    }

    // One finding per reachable sink line, shortest chain attached.
    let mut findings: BTreeMap<(String, u32, &'static str), FlowFinding> = BTreeMap::new();
    for s in &sinks {
        if !seen[s.owner as usize] {
            continue;
        }
        let chain = chain_to(&tab, &parent, s.owner);
        let key = (
            tab.fns[s.owner as usize].path.clone(),
            s.line,
            s.effect.rule(),
        );
        let sym = &tab.fns[s.owner as usize];
        let entry = FlowFinding {
            rule: s.effect.rule(),
            effect: s.effect,
            crate_name: sym.crate_name.clone(),
            path: sym.path.clone(),
            line: s.line,
            sink: s.what.clone(),
            message: render_message(s, &chain),
            chain,
        };
        // Keep the first (shortest-chain) finding per (path, line, rule);
        // BFS parents make chains minimal already, so first wins is stable.
        findings.entry(key).or_insert(entry);
    }

    let mut tagged = BTreeMap::new();
    for e in EFFECTS {
        tagged.insert(
            e.name(),
            masks.iter().filter(|&&m| m & e.bit() != 0).count(),
        );
    }
    let stats = FlowStats {
        functions: tab.fns.len(),
        edges: graph.edge_count,
        roots: roots.len(),
        tagged,
    };
    (findings.into_values().collect(), stats)
}

/// Walk parent pointers from the sink's function back to its root.
fn chain_to(tab: &SymbolTable, parent: &[Option<u32>], sink_fn: u32) -> Vec<ChainHop> {
    let mut chain = Vec::new();
    let mut cur = Some(sink_fn);
    while let Some(f) = cur {
        let sym = &tab.fns[f as usize];
        chain.push(ChainHop {
            name: sym.name.clone(),
            path: sym.path.clone(),
            line: sym.line,
        });
        cur = parent[f as usize];
        if chain.len() > 64 {
            break; // cycle guard; BFS parents cannot cycle, belt and braces
        }
    }
    chain.reverse();
    chain
}

fn render_message(s: &Sink, chain: &[ChainHop]) -> String {
    let what = match s.effect {
        Effect::Panics => "panic sink",
        Effect::Nondet => "nondeterminism source",
        Effect::Copies => "unsanctioned payload copy",
        Effect::Spawns => "thread spawn outside morsel.rs",
    };
    let names: Vec<&str> = chain.iter().map(|h| h.name.as_str()).collect();
    let shown = if names.len() > 10 {
        format!(
            "{} -> ... -> {} ({} hops)",
            names[..4].join(" -> "),
            names[names.len() - 4..].join(" -> "),
            names.len()
        )
    } else {
        names.join(" -> ")
    };
    format!(
        "{what} `{}` reachable from entry point `{}`; witness: {shown}",
        s.what,
        chain.first().map_or("?", |h| h.name.as_str()),
    )
}

/// True when a token-rule suppression covering `line` sanctions `effect`.
fn sanctioned(file: &SourceFile, line: u32, effect: Effect) -> bool {
    file.suppressions
        .iter()
        .any(|s| s.covers(line) && effect.sanctioning_rules().contains(&s.rule.as_str()))
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const RAND_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "RandomState"];
/// Receiver identifiers the copy sink treats as chunk payloads — the same
/// list C001 uses.
const PAYLOAD_RECEIVERS: [&str; 12] = [
    "chunk",
    "chunks",
    "full",
    "value",
    "fed",
    "vol",
    "volume",
    "tuples",
    "fragments",
    "blob",
    "payload",
    "buf",
];

/// Scan the symbolized files for effect sinks, skipping sinks already
/// sanctioned by a covering token-rule allow.
fn find_sinks(files: &[SourceFile], tab: &SymbolTable) -> Vec<Sink> {
    let mut out = Vec::new();
    for &fx in &tab.files_used {
        let file = &files[fx];
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            let Some(owner) = tab.owner[fx][i] else {
                continue;
            };
            if file.is_test_code(i) {
                continue;
            }
            let TokenKind::Ident(s) = &t.kind else {
                continue;
            };
            let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.kind.is_punct(p));
            let next_open = toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Open('('));
            let prev_is = |p: &str| i > 0 && toks[i - 1].kind.is_punct(p);

            let sink: Option<(Effect, String)> = if PANIC_MACROS.contains(&s.as_str())
                && next_is("!")
            {
                Some((Effect::Panics, format!("{s}!")))
            } else if (s == "unwrap" || s == "expect") && prev_is(".") && next_open {
                Some((Effect::Panics, format!(".{s}()")))
            } else if HASH_TYPES.contains(&s.as_str()) {
                Some((Effect::Nondet, format!("{s} (hash order)")))
            } else if CLOCK_TYPES.contains(&s.as_str()) {
                Some((Effect::Nondet, format!("{s} (clock)")))
            } else if RAND_IDENTS.contains(&s.as_str()) || (s == "rand" && next_is("::")) {
                Some((Effect::Nondet, format!("{s} (randomness)")))
            } else if (s == "clone" || s == "to_vec")
                && prev_is(".")
                && next_open
                && i >= 2
                && match &toks[i - 2].kind {
                    TokenKind::Close(')') | TokenKind::Close(']') => true,
                    TokenKind::Ident(recv) => PAYLOAD_RECEIVERS.contains(&recv.as_str()),
                    _ => false,
                }
                && !rules::copies_metadata(toks, i)
                && !rules::sanctioned_copy_fn(&tab.fns[owner as usize].name)
            {
                Some((Effect::Copies, format!(".{s}() on a payload")))
            } else if s == "spawn" && next_open && !file.path.ends_with("parexec/src/morsel.rs") {
                Some((Effect::Spawns, "spawn(".to_string()))
            } else {
                None
            };

            if let Some((effect, what)) = sink {
                if !sanctioned(file, t.line, effect) {
                    out.push(Sink {
                        owner,
                        effect,
                        line: t.line,
                        what,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn run(files: &[(&str, &str, &str)]) -> (Vec<FlowFinding>, FlowStats) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, src)| SourceFile::parse(path, krate, FileKind::Library, src))
            .collect();
        analyze(&parsed)
    }

    #[test]
    fn panic_reachable_from_engine_root_fires_f001() {
        let (findings, _) = run(&[(
            "lib.rs",
            "engine-rdd",
            "pub fn entry() { helper(); }\nfn helper() { None::<u32>.expect(\"boom\"); }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "F001");
        assert_eq!(findings[0].line, 2);
        let names: Vec<&str> = findings[0].chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["entry", "helper"]);
    }

    #[test]
    fn unreachable_sink_is_silent() {
        let (findings, stats) = run(&[(
            "lib.rs",
            "engine-rdd",
            "pub fn entry() {}\nfn orphan() { None::<u32>.expect(\"boom\"); }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.tagged["panics"], 1); // tagged but unreachable
    }

    #[test]
    fn non_root_crate_pub_fn_is_not_a_root() {
        let (findings, stats) = run(&[(
            "lib.rs",
            "plancheck",
            "pub fn entry() { helper(); }\nfn helper() { None::<u32>.expect(\"boom\"); }\n",
        )]);
        assert!(findings.is_empty());
        assert_eq!(stats.roots, 0);
    }

    #[test]
    fn token_rule_allow_sanctions_the_sink_at_source() {
        let (findings, stats) = run(&[(
            "lib.rs",
            "engine-rdd",
            "pub fn entry() { helper(); }\n\
             fn helper() {\n\
                 // scilint: allow(H001, boundary: poisoned-lock recovery is a programming error)\n\
                 None::<u32>.unwrap();\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.tagged["panics"], 0);
    }

    #[test]
    fn effects_reach_fixed_point_across_three_hops() {
        let (_, stats) = run(&[(
            "lib.rs",
            "engine-rdd",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() { panic!(\"x\"); }\n",
        )]);
        assert_eq!(stats.tagged["panics"], 3);
    }

    #[test]
    fn morsel_rs_spawns_are_sanctioned() {
        let (findings, _) = run(&[
            (
                "crates/parexec/src/morsel.rs",
                "parexec",
                "pub fn run_pool() { scope(|s| { s.spawn(|| {}); }); }\n",
            ),
            (
                "lib.rs",
                "sciops",
                "pub fn kernel_par() { parexec::run_pool(); }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
