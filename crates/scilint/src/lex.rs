//! A small, self-contained Rust lexer.
//!
//! Produces a flat token stream with line numbers plus the comment text the
//! suppression parser needs. The lexer is deliberately approximate where
//! exactness would require a full grammar (e.g. `1.` is lexed as an integer
//! followed by a dot) — every rule built on top of it is a *lint*, not a
//! compiler pass, and the fixture corpus pins the cases that matter.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token classification.
    pub kind: TokenKind,
}

/// Token classification. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, ...).
    Ident(String),
    /// Integer literal (no `.`/exponent and no float suffix).
    Int,
    /// Float literal; the suffix (`f32`/`f64`) is kept when present.
    Float {
        /// `Some("f32")` / `Some("f64")` when the literal carries a suffix.
        suffix: Option<String>,
    },
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, longest-match for the operators the rules inspect
    /// (`==`, `!=`, `::`, `->`, ...), single characters otherwise.
    Punct(&'static str),
    /// An opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]`, or `}`.
    Close(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }
}

/// A comment with its starting line, `//` and `/* */` alike. Doc comments
/// are captured too but flagged: suppression directives must be plain
/// comments, so prose *describing* the directive syntax never parses.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment body without the leading `//`, `///`, `//!` or `/*`.
    pub text: String,
    /// True for `///`, `//!`, `/**`, `/*!` doc comments.
    pub doc: bool,
}

/// The output of [`lex`]: tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

const MULTI_PUNCTS: [&str; 18] = [
    "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=", "*=", "/=", "%=",
    "..", "<<", ">>",
];

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let raw = &src[start..j];
                // Strip the extra marker of doc comments.
                let text = raw.strip_prefix(['/', '!']);
                out.comments.push(Comment {
                    line,
                    text: text.unwrap_or(raw).to_string(),
                    doc: text.is_some(),
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let text = &src[(i + 2).min(j)..j.saturating_sub(2).max(i + 2)];
                out.comments.push(Comment {
                    line: start_line,
                    text: text.to_string(),
                    doc: text.starts_with(['*', '!']) && text != "*",
                });
                i = j;
            }
            b'"' => {
                let (j, nl) = scan_string(b, i);
                line += nl;
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Str,
                });
                i = j;
            }
            b'r' | b'b' if starts_string_prefix(b, i) => {
                let start_line = line;
                let j = scan_prefixed_string(b, i);
                line += count_lines(&b[i..j]);
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str,
                });
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime.
                if let Some(j) = scan_char_literal(b, i) {
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Char,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Lifetime,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let (j, kind) = scan_number(b, src, i);
                out.tokens.push(Token { line, kind });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(src[i..j].to_string()),
                });
                i = j;
            }
            b'(' | b'[' | b'{' => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Open(c as char),
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Close(c as char),
                });
                i += 1;
            }
            _ => {
                let rest = &src[i..];
                let mut matched = None;
                for p in MULTI_PUNCTS {
                    if rest.starts_with(p) {
                        matched = Some(p);
                        break;
                    }
                }
                match matched {
                    Some(p) => {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Punct(p),
                        });
                        i += p.len();
                    }
                    None => {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Punct(single_punct(c)),
                        });
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

fn single_punct(c: u8) -> &'static str {
    const TABLE: &str = "!#$%&*+,-./:;<=>?@^|~\\";
    const NAMES: [&str; 22] = [
        "!", "#", "$", "%", "&", "*", "+", ",", "-", ".", "/", ":", ";", "<", "=", ">", "?", "@",
        "^", "|", "~", "\\",
    ];
    match TABLE.find(c as char) {
        Some(ix) => NAMES[ix],
        None => "?",
    }
}

fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    // r"..." r#"..."# b"..." br"..." b'..' — only treat as a string prefix
    // when the quote actually follows, so identifiers like `radius` lex
    // normally.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && (b[j] == b'"' || (b[j] == b'\'' && b[i] == b'b'))
}

fn scan_prefixed_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    let mut hashes = 0;
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= b.len() {
        return j;
    }
    if b[j] == b'\'' {
        // Byte literal b'x'.
        return scan_char_literal(b, j).unwrap_or(j + 1);
    }
    j += 1; // opening quote
    if raw {
        while j < b.len() {
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return k;
                }
            }
            j += 1;
        }
        j
    } else {
        let (end, _) = scan_string(b, j - 1);
        end
    }
}

/// Scan a `"..."` string starting at the opening quote; returns
/// (index past closing quote, newlines crossed).
fn scan_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Try to scan a char literal at `i` (which holds `'`). Returns the index
/// past the closing quote, or `None` if this is a lifetime.
fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // \u{...} escapes.
        if j <= b.len() && j >= 1 && b[j - 1] == b'{' {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        (j < b.len()).then_some(j + 1)
    } else {
        // 'x' — exactly one char (or a UTF-8 sequence) then a quote.
        let mut k = j + 1;
        while k < b.len() && (b[k] & 0xC0) == 0x80 {
            k += 1; // UTF-8 continuation bytes
        }
        (k < b.len() && b[k] == b'\'').then_some(k + 1)
    }
}

fn scan_number(b: &[u8], src: &str, i: usize) -> (usize, TokenKind) {
    let mut j = i;
    let hex = src[i..].starts_with("0x") || src[i..].starts_with("0X");
    let bin_oct = src[i..].starts_with("0b") || src[i..].starts_with("0o");
    if hex || bin_oct {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, TokenKind::Int);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    let mut is_float = false;
    // A '.' continues the number only when followed by a digit (so `1.max`
    // and `0..n` lex as integer + punct).
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix: f32/f64 force float; integer suffixes keep Int.
    let suf_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    let suffix = &src[suf_start..j];
    if suffix == "f32" || suffix == "f64" {
        return (
            j,
            TokenKind::Float {
                suffix: Some(suffix.to_string()),
            },
        );
    }
    if is_float {
        (j, TokenKind::Float { suffix: None })
    } else {
        (j, TokenKind::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let l = lex("fn main() { let x = 1.5f32; }");
        let kinds: Vec<&TokenKind> = l.tokens.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokenKind::Float {
            suffix: Some("f32".into())
        }));
        assert_eq!(idents("fn main"), ["fn", "main"]);
    }

    #[test]
    fn comments_and_lines() {
        let l = lex("// one\nlet a = 1; // two\n/* three\nfour */ let b = 2;");
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[2].line, 3);
        let b_tok = l
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("b"))
            .expect("b token");
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn int_method_call_is_not_float() {
        let l = lex("let x = 1.max(2); let r = 0..n; let f = 2.5;");
        let floats = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Float { .. }))
            .count();
        assert_eq!(floats, 1);
    }

    #[test]
    fn multi_char_puncts() {
        let l = lex("a == b != c :: d -> e");
        let puncts: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let l = lex(r##"let a = r#"no " end"#; let b = b"bytes"; let c = "q";"##);
        let strs = l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let nl = '\n'; let q = '\''; let s: &'static str = x;");
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 1);
    }
}
