//! scimemo's source half: a purity lattice over the sciflow call graph.
//!
//! The result cache sketched in ROADMAP item 1 is sound only when a
//! pipeline node's output is a pure function of its cache key. The effect
//! lattice ([`crate::flow`]) answers "does this function panic / copy /
//! spawn"; this pass answers the memoization question directly: every
//! function is placed on the four-point purity lattice
//!
//! ```text
//! Pure < DetImpure < AmbientRead < Nondet
//! ```
//!
//! * **`Pure`** — output depends only on the arguments; no observable
//!   side effects.
//! * **`DetImpure`** — output still depends only on the arguments, but the
//!   function has benign deterministic side effects (copy-ledger bumps,
//!   diagnostics printing). Memoizing it skips the side effects, never
//!   changes a result — still cacheable.
//! * **`AmbientRead`** — reads process-ambient state that is *not* part of
//!   any cache key: environment variables, config files, thread counts,
//!   the working directory. A cached result could leak one environment's
//!   answer into another — not cacheable.
//! * **`Nondet`** — observes hash order, the clock, or randomness; two
//!   calls with equal arguments may disagree — not cacheable.
//!
//! Seeds come from a token-level sink grammar (below), levels propagate
//! callee → caller over the same over-approximate call graph sciflow uses
//! (join = lattice max), and every function gets a **shortest witness
//! chain** to a sink of its verdict level via a per-level multi-source BFS
//! over the reverse graph. A nondet sink already sanctioned by a covering
//! `allow(D001/D002/D003/F002, reason)` is trusted not to reach results
//! (the reviewed reason covers the memoization story too) and seeds
//! nothing.
//!
//! Determinism contract: same as sciflow — ids are (path, token)-ordered,
//! BFS visits in id order, so two runs emit byte-identical tables.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::callgraph;
use crate::flow::ChainHop;
use crate::lex::TokenKind;
use crate::profiles;
use crate::source::SourceFile;
use crate::symbols::{self, SymbolTable};
use crate::walk;

/// One point on the purity lattice. Discriminants are ordered so that
/// `max` is the lattice join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Purity {
    /// Output is a function of the arguments; no observable effects.
    Pure = 0,
    /// Deterministic result with benign side effects (ledgers, logging).
    DetImpure = 1,
    /// Reads ambient process state (env, config files, thread counts).
    AmbientRead = 2,
    /// Observes hash order, the clock, or randomness.
    Nondet = 3,
}

/// All levels, in lattice order.
pub const LEVELS: [Purity; 4] = [
    Purity::Pure,
    Purity::DetImpure,
    Purity::AmbientRead,
    Purity::Nondet,
];

impl Purity {
    /// Lattice join.
    pub fn join(self, other: Purity) -> Purity {
        self.max(other)
    }

    /// Report name (`pure`, `det_impure`, `ambient_read`, `nondet`).
    pub fn name(self) -> &'static str {
        match self {
            Purity::Pure => "pure",
            Purity::DetImpure => "det_impure",
            Purity::AmbientRead => "ambient_read",
            Purity::Nondet => "nondet",
        }
    }

    /// True when a result produced by a function of this level may be
    /// served from a fingerprint-keyed cache.
    pub fn memoizable(self) -> bool {
        self <= Purity::DetImpure
    }

    fn from_u8(v: u8) -> Purity {
        match v {
            0 => Purity::Pure,
            1 => Purity::DetImpure,
            2 => Purity::AmbientRead,
            _ => Purity::Nondet,
        }
    }
}

/// The purity verdict for one function, with its witness.
#[derive(Debug, Clone)]
pub struct PurityVerdict {
    /// Function name (unqualified).
    pub name: String,
    /// Owning crate.
    pub crate_name: String,
    /// Workspace-relative path of the definition.
    pub path: String,
    /// Line of the `fn` token.
    pub line: u32,
    /// True for `pub` functions.
    pub is_pub: bool,
    /// The verdict.
    pub level: Purity,
    /// Shortest witness chain, this function first, sink owner last.
    /// Empty for `Pure` functions.
    pub witness: Vec<ChainHop>,
    /// Description of the sink that decides the verdict (`Instant
    /// (clock)`, `env::var (ambient)`, ...). Empty for `Pure`.
    pub sink: String,
    /// Sink location, for the report. Zero line for `Pure`.
    pub sink_path: String,
    /// 1-based sink line, 0 for `Pure`.
    pub sink_line: u32,
}

/// The workspace purity table.
#[derive(Debug, Clone, Default)]
pub struct PurityTable {
    /// One verdict per analyzed function, in symbol-table id order
    /// (sorted by (path, token position)).
    pub verdicts: Vec<PurityVerdict>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl PurityTable {
    /// The worst verdict over every function named `name` — the safe
    /// answer when a kernel binding names a function the token-level
    /// resolver cannot disambiguate. A `crate::name` qualified form
    /// restricts the join to one crate's definitions, so a binding can
    /// pin a common name (`new`, `run`) to the crate that owns it
    /// instead of joining over every same-named fn in the workspace.
    /// Ties break by table order, which is (path, token) order, so the
    /// answer is deterministic.
    pub fn worst_named(&self, name: &str) -> Option<&PurityVerdict> {
        let (krate, bare) = match name.split_once("::") {
            Some((k, b)) => (Some(k), b),
            None => (None, name),
        };
        let ids = self.by_name.get(bare)?;
        ids.iter()
            .map(|&i| &self.verdicts[i])
            .filter(|v| krate.is_none_or(|k| v.crate_name == k))
            .max_by_key(|v| (v.level, std::cmp::Reverse((v.path.clone(), v.line))))
    }

    /// Functions per level, for the summary line of reports.
    pub fn summary(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for l in LEVELS {
            out.insert(l.name(), 0usize);
        }
        for v in &self.verdicts {
            *out.entry(v.level.name()).or_insert(0) += 1;
        }
        out
    }
}

/// One purity sink.
struct PuritySink {
    owner: u32,
    level: Purity,
    line: u32,
    what: String,
}

/// Nondet sink grammar — the same sources sciflow's `F002` recognizes.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const RAND_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "RandomState"];

/// Ambient-read sink grammar: qualified calls that read env / config /
/// thread-count / process state (`env::var(..)`, `fs::read_to_string(..)`,
/// `thread::available_parallelism()`, ...).
const AMBIENT_READS: [&str; 9] = [
    "var",
    "var_os",
    "vars",
    "args",
    "args_os",
    "current_dir",
    "available_parallelism",
    "read_to_string",
    "read_dir",
];

/// Deterministic-side-effect sink grammar: diagnostics macros and atomic
/// read-modify-writes (global ledgers such as `CopyCounter`).
const PRINT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];
const ATOMIC_RMW: [&str; 8] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
];

/// Token rules whose covering `allow` sanctions a nondet sink for purity
/// purposes: the reviewed reason ("results stay bit-identical", "order
/// never observed") is exactly a memoization-soundness argument. `F002`
/// is included because sciflow's burn-down anchored its allows at the
/// same sink lines.
const NONDET_SANCTIONS: [&str; 4] = ["D001", "D002", "D003", "F002"];

fn sanctioned_nondet(file: &SourceFile, line: u32) -> bool {
    file.suppressions
        .iter()
        .any(|s| s.covers(line) && NONDET_SANCTIONS.contains(&s.rule.as_str()))
}

/// Scan for purity sinks, skipping test regions and sanctioned nondet
/// sources.
fn find_sinks(files: &[SourceFile], tab: &SymbolTable) -> Vec<PuritySink> {
    let mut out = Vec::new();
    for &fx in &tab.files_used {
        let file = &files[fx];
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            let Some(owner) = tab.owner[fx][i] else {
                continue;
            };
            if file.is_test_code(i) {
                continue;
            }
            let TokenKind::Ident(s) = &t.kind else {
                continue;
            };
            let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.kind.is_punct(p));
            let next_open = toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Open('('));
            let prev_is = |p: &str| i > 0 && toks[i - 1].kind.is_punct(p);

            let sink: Option<(Purity, String)> = if HASH_TYPES.contains(&s.as_str()) {
                Some((Purity::Nondet, format!("{s} (hash order)")))
            } else if CLOCK_TYPES.contains(&s.as_str()) {
                Some((Purity::Nondet, format!("{s} (clock)")))
            } else if RAND_IDENTS.contains(&s.as_str()) || (s == "rand" && next_is("::")) {
                Some((Purity::Nondet, format!("{s} (randomness)")))
            } else if AMBIENT_READS.contains(&s.as_str()) && next_open && prev_is("::") {
                Some((Purity::AmbientRead, format!("{s}() (ambient read)")))
            } else if PRINT_MACROS.contains(&s.as_str()) && next_is("!") {
                Some((Purity::DetImpure, format!("{s}!")))
            } else if ATOMIC_RMW.contains(&s.as_str()) && next_open && prev_is(".") {
                Some((Purity::DetImpure, format!(".{s}() (global ledger)")))
            } else {
                None
            };

            if let Some((level, what)) = sink {
                if level == Purity::Nondet && sanctioned_nondet(file, t.line) {
                    continue;
                }
                out.push(PuritySink {
                    owner,
                    level,
                    line: t.line,
                    what,
                });
            }
        }
    }
    out
}

/// Run the purity analysis over already-parsed files.
pub fn analyze(files: &[SourceFile]) -> PurityTable {
    let tab = symbols::extract(files, &|krate| !profiles::flow_exempt(krate));
    let graph = callgraph::build(&tab);
    let sinks = find_sinks(files, &tab);
    let n = tab.fns.len();

    // Fixed-point join propagation, callee → caller.
    let mut levels = vec![0u8; n];
    for s in &sinks {
        levels[s.owner as usize] = levels[s.owner as usize].max(s.level as u8);
    }
    let rev = graph.reversed();
    let mut work: Vec<u32> = (0..n as u32).filter(|&f| levels[f as usize] != 0).collect();
    while let Some(f) = work.pop() {
        let l = levels[f as usize];
        for &caller in &rev[f as usize] {
            if levels[caller as usize] < l {
                levels[caller as usize] = l;
                work.push(caller);
            }
        }
    }

    // Per-level witness chains: multi-source BFS over the *reverse* graph
    // from the owners of direct sinks at that level. `next[f]` points one
    // hop toward the sink, `seed[f]` names the sink reached. Sources and
    // neighbors are visited in id order, so chains are deterministic.
    let mut next: Vec<[Option<u32>; 4]> = vec![[None; 4]; n];
    let mut seed: Vec<[Option<usize>; 4]> = vec![[None; 4]; n];
    for level in [Purity::DetImpure, Purity::AmbientRead, Purity::Nondet] {
        let lx = level as usize;
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        // First sink per owner at exactly this level, in sink order
        // (file/token order) — deterministic.
        for (sx, s) in sinks.iter().enumerate() {
            if s.level == level && !seen[s.owner as usize] {
                seen[s.owner as usize] = true;
                seed[s.owner as usize][lx] = Some(sx);
                queue.push_back(s.owner);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &caller in &rev[f as usize] {
                if !seen[caller as usize] {
                    seen[caller as usize] = true;
                    next[caller as usize][lx] = Some(f);
                    seed[caller as usize][lx] = seed[f as usize][lx];
                    queue.push_back(caller);
                }
            }
        }
    }

    let mut verdicts = Vec::with_capacity(n);
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for f in 0..n {
        let sym = &tab.fns[f];
        let level = Purity::from_u8(levels[f]);
        let (witness, sink_desc, sink_path, sink_line) = if level == Purity::Pure {
            (Vec::new(), String::new(), String::new(), 0)
        } else {
            let lx = level as usize;
            let mut chain = Vec::new();
            let mut cur = Some(f as u32);
            while let Some(c) = cur {
                let csym = &tab.fns[c as usize];
                chain.push(ChainHop {
                    name: csym.name.clone(),
                    path: csym.path.clone(),
                    line: csym.line,
                });
                cur = next[c as usize][lx];
                if chain.len() > 64 {
                    break; // cycle guard; BFS next-pointers cannot cycle
                }
            }
            let s = seed[f][lx].map(|sx| &sinks[sx]);
            (
                chain,
                s.map_or(String::new(), |s| s.what.clone()),
                s.map_or(String::new(), |s| tab.fns[s.owner as usize].path.clone()),
                s.map_or(0, |s| s.line),
            )
        };
        by_name.entry(sym.name.clone()).or_default().push(f);
        verdicts.push(PurityVerdict {
            name: sym.name.clone(),
            crate_name: sym.crate_name.clone(),
            path: sym.path.clone(),
            line: sym.line,
            is_pub: sym.is_pub,
            level,
            witness,
            sink: sink_desc,
            sink_path,
            sink_line,
        });
    }
    PurityTable { verdicts, by_name }
}

/// Walk the workspace at `root` and compute the purity table for every
/// member crate (bench excluded, same as sciflow).
pub fn analyze_workspace(root: &Path) -> io::Result<PurityTable> {
    let files = walk::load_workspace(root)?;
    Ok(analyze(&files))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn run(files: &[(&str, &str, &str)]) -> PurityTable {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, src)| SourceFile::parse(path, krate, FileKind::Library, src))
            .collect();
        analyze(&parsed)
    }

    fn level_of(t: &PurityTable, name: &str) -> Purity {
        t.worst_named(name).expect("fn known").level
    }

    #[test]
    fn pure_fn_is_pure() {
        let t = run(&[("lib.rs", "sciops", "pub fn f(x: u32) -> u32 { x + 1 }\n")]);
        assert_eq!(level_of(&t, "f"), Purity::Pure);
        assert!(t.worst_named("f").expect("f").witness.is_empty());
    }

    #[test]
    fn clock_read_is_nondet_with_witness() {
        let t = run(&[(
            "lib.rs",
            "sciops",
            "pub fn k() { helper(); }\nfn helper() { let _ = Instant::now(); }\n",
        )]);
        let v = t.worst_named("k").expect("k");
        assert_eq!(v.level, Purity::Nondet);
        let names: Vec<&str> = v.witness.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["k", "helper"]);
        assert!(v.sink.contains("clock"), "{}", v.sink);
    }

    #[test]
    fn env_read_is_ambient() {
        let t = run(&[(
            "lib.rs",
            "parexec",
            "pub fn auto() { let _ = std::env::var(\"T\"); }\n",
        )]);
        assert_eq!(level_of(&t, "auto"), Purity::AmbientRead);
        assert!(!Purity::AmbientRead.memoizable());
    }

    #[test]
    fn thread_count_read_is_ambient() {
        let t = run(&[(
            "lib.rs",
            "parexec",
            "pub fn detect() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n",
        )]);
        assert_eq!(level_of(&t, "detect"), Purity::AmbientRead);
    }

    #[test]
    fn ledger_bump_is_det_impure_and_memoizable() {
        let t = run(&[(
            "lib.rs",
            "marray",
            "pub fn record(b: u64) { COPIES.fetch_add(b, Ordering::Relaxed); }\n\
             pub fn kernel() { record(1); }\n",
        )]);
        assert_eq!(level_of(&t, "kernel"), Purity::DetImpure);
        assert!(Purity::DetImpure.memoizable());
    }

    #[test]
    fn join_takes_the_worst_callee() {
        let t = run(&[(
            "lib.rs",
            "sciops",
            "pub fn top() { a(); b(); }\n\
             fn a() { println!(\"x\"); }\n\
             fn b() { let _: HashMap<u32, u32> = HashMap::new(); }\n",
        )]);
        assert_eq!(level_of(&t, "a"), Purity::DetImpure);
        assert_eq!(level_of(&t, "b"), Purity::Nondet);
        assert_eq!(level_of(&t, "top"), Purity::Nondet);
    }

    #[test]
    fn sanctioned_nondet_sink_seeds_nothing() {
        let t = run(&[(
            "lib.rs",
            "parexec",
            "pub fn stats() {\n\
             // scilint: allow(F002, timing feeds scheduler stats only; results stay bit-identical)\n\
             let _ = Instant::now();\n\
             }\n",
        )]);
        assert_eq!(level_of(&t, "stats"), Purity::Pure);
    }

    #[test]
    fn worst_named_joins_over_same_named_fns() {
        let t = run(&[
            ("a.rs", "sciops", "pub fn go() {}\n"),
            ("b.rs", "core", "pub fn go() { let _ = Instant::now(); }\n"),
        ]);
        assert_eq!(level_of(&t, "go"), Purity::Nondet);
    }

    #[test]
    fn crate_qualified_lookup_narrows_the_join() {
        let t = run(&[
            ("a.rs", "sciops", "pub fn go() {}\n"),
            ("b.rs", "core", "pub fn go() { let _ = Instant::now(); }\n"),
        ]);
        assert_eq!(level_of(&t, "sciops::go"), Purity::Pure);
        assert_eq!(level_of(&t, "core::go"), Purity::Nondet);
        assert!(t.worst_named("formats::go").is_none());
    }

    #[test]
    fn ambient_read_in_a_constructor_does_not_taint_unrelated_news() {
        // Regression for the Server::new gotcha: an ambient read inside
        // one crate's constructor must not leak through `Mutex::new(..)`
        // call sites into every function in the workspace — call
        // resolution is per (crate, file, fn), not bare name.
        let t = run(&[
            (
                "server.rs",
                "serve",
                "impl Server { pub fn new() -> Server { let _ = std::fs::read_to_string(\"w\"); Server } }\n",
            ),
            (
                "kernel.rs",
                "sciops",
                "pub fn kernel() -> u32 { let _m = Mutex::new(7); 7 }\n",
            ),
        ]);
        assert_eq!(level_of(&t, "kernel"), Purity::Pure);
        assert_eq!(level_of(&t, "serve::new"), Purity::AmbientRead);
    }

    #[test]
    fn summary_counts_every_level() {
        let t = run(&[(
            "lib.rs",
            "sciops",
            "pub fn p() {}\nfn d() { println!(\"x\"); }\nfn n() { let _ = Instant::now(); }\n",
        )]);
        let s = t.summary();
        assert_eq!(s["pure"], 1);
        assert_eq!(s["det_impure"], 1);
        assert_eq!(s["nondet"], 1);
        assert_eq!(s["ambient_read"], 0);
    }
}
