//! Workspace walker: find and classify every `.rs` file that scilint lints.
//!
//! Layout assumptions match this repository: member crates under
//! `crates/<name>/{src,tests,benches,examples}` plus the root package's
//! `src/` and `tests/`. `vendor/` (offline shims), `target/`, and any
//! `fixtures/` directory are never walked.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{FileKind, SourceFile};

/// Load every lintable source file under the workspace `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let name = member
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            load_package(root, &member, &name, &mut files)?;
        }
    }
    // The workspace root is itself a package named `scibench`.
    load_package(root, root, "scibench", &mut files)?;

    if files.is_empty() {
        // A gate pointed at the wrong directory must fail loudly, not
        // report a clean (empty) workspace.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Rust sources found under {}", root.display()),
        ));
    }

    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn load_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    const DIRS: [(&str, FileKind); 4] = [
        ("src", FileKind::Library),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ];
    for (dir, kind) in DIRS {
        let base = pkg.join(dir);
        if base.is_dir() {
            collect_rs(root, &base, crate_name, kind, out)?;
        }
    }
    Ok(())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(root, &path, crate_name, kind, out)?;
        } else if name.ends_with(".rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::parse(&rel, crate_name, kind, &src));
        }
    }
    Ok(())
}
