//! scilint: a source-level determinism and numeric-safety analyzer for the
//! scibench workspace.
//!
//! The paper's cross-engine comparisons (and parexec's bit-identity
//! contract) require that results never depend on hash seeds, the clock,
//! ambient randomness, or float accumulation order. `plancheck` verifies
//! the simulated task graphs; scilint closes the remaining gap by checking
//! the *Rust sources* for the patterns that silently break determinism.
//!
//! It is deliberately zero-dependency — no `syn`, no regex — built on a
//! small hand-written lexer ([`lex`]), a per-file structural model
//! ([`source`]: test regions, enclosing functions, suppressions), a rule
//! table ([`rules`]), per-crate profiles ([`profiles`]), and a reporter
//! ([`report`]) with JSON output for tooling. See DESIGN.md §3.9 for the
//! rule table and the suppression policy.

pub mod callgraph;
pub mod flow;
pub mod lex;
pub mod profiles;
pub mod purity;
pub mod report;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod walk;

use std::io;
use std::path::Path;

use report::Report;
use rules::Finding;
use source::SourceFile;

/// Analyze a set of already-parsed files (used by tests and fixtures).
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for file in files {
        rules::check_file(file, profiles::rules_for(&file.crate_name), &mut raw);
    }
    // H002 only makes sense when a kernel crate is present in the set.
    let kernels: Vec<&str> = profiles::KERNEL_CRATES
        .iter()
        .copied()
        .filter(|k| files.iter().any(|f| f.crate_name == *k))
        .collect();
    rules::check_par_twins(files, &kernels, &mut raw);
    // The interprocedural pass: F001–F004 findings land at their sink with
    // a witness chain in the message; the structured chains are kept on the
    // report for the `sciflow/v1` view.
    let (flow_findings, flow_stats) = flow::analyze(files);
    raw.extend(flow_findings.iter().map(flow::FlowFinding::to_finding));
    // Findings of rules a crate's profile does not enable are dropped here
    // so check_par_twins stays profile-agnostic. S-rules (suppression
    // grammar) and F-rules (workspace-level reachability, anchored at the
    // sink's crate) bypass per-crate profiles.
    raw.retain(|f| {
        f.rule.starts_with('S')
            || f.rule.starts_with('F')
            || profiles::rules_for(&f.crate_name).contains(&f.rule)
    });
    let mut report = Report::build(files, raw);
    let surviving: Vec<flow::FlowFinding> = flow_findings
        .into_iter()
        .filter(|ff| {
            report
                .findings
                .iter()
                .any(|f| f.rule == ff.rule && f.path == ff.path && f.line == ff.line)
        })
        .collect();
    report.flow_findings = surviving;
    report.flow_stats = flow_stats;
    report
}

/// Walk the workspace at `root` and analyze every member crate.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let files = walk::load_workspace(root)?;
    Ok(analyze_files(&files))
}
