//! The symbol pass behind sciflow: function definitions, call sites, and
//! type-definition hints, extracted per file from the token stream.
//!
//! This is deliberately *not* name resolution — there is no trait solver and
//! no import graph. The pass records, for every library file outside test
//! regions:
//!
//! * every `fn` definition with a body (name, line, `pub`-ness, and which
//!   tokens its body owns),
//! * every call site (`name(...)`, `recv.name(...)`, `qual::name(...)`)
//!   attributed to the innermost enclosing function, keeping the immediate
//!   path qualifier as a resolution hint,
//! * every type name a file defines or impls (`struct`/`enum`/`trait`/
//!   `union`/`impl` targets), so `Type::method(...)` calls can be narrowed
//!   to the files that actually implement `Type`.
//!
//! [`crate::callgraph`] turns these into an over-approximate call graph and
//! [`crate::flow`] propagates effects over it.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::TokenKind;
use crate::source::{FileKind, SourceFile};

/// One function definition with a body.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name (unqualified).
    pub name: String,
    /// Index into the analyzed file slice.
    pub file: usize,
    /// Owning crate (copied from the file for convenience).
    pub crate_name: String,
    /// Workspace-relative path (copied from the file).
    pub path: String,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// True when a `pub` marker precedes the definition.
    pub is_pub: bool,
}

/// One call site, attributed to the innermost enclosing function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling [`FnSym`].
    pub caller: u32,
    /// Callee name (unqualified).
    pub name: String,
    /// The immediate `qual::` path segment, when present (`marray::get` →
    /// `marray`, `NdArray::zeros` → `NdArray`).
    pub qualifier: Option<String>,
    /// True for `recv.name(...)` method calls.
    pub method: bool,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// The extracted workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All function definitions, in (file, token) order.
    pub fns: Vec<FnSym>,
    /// All call sites, in (file, token) order.
    pub calls: Vec<CallSite>,
    /// Function ids by name.
    pub by_name: BTreeMap<String, Vec<u32>>,
    /// Type name → indexes of files that define or impl it.
    pub types: BTreeMap<String, BTreeSet<usize>>,
    /// Per file, per token: innermost enclosing [`FnSym`] id. Used by the
    /// effect pass to attribute sink tokens to functions.
    pub owner: Vec<Vec<Option<u32>>>,
    /// Indexes of the files that were symbolized (library files of
    /// non-exempt crates); others have empty `owner` rows.
    pub files_used: Vec<usize>,
}

/// Keywords that look like calls when followed by `(` (`pub(crate)`,
/// `if (..)`, `return (a, b)`, ...).
const CALLISH_KEYWORDS: [&str; 20] = [
    "fn", "if", "while", "for", "match", "return", "loop", "in", "as", "let", "move", "unsafe",
    "where", "impl", "pub", "else", "mut", "ref", "use", "dyn",
];

/// Extract the symbol table from `files`. Only [`FileKind::Library`] files
/// for which `include(crate_name)` holds are symbolized; test regions inside
/// them are skipped entirely.
pub fn extract(files: &[SourceFile], include: &dyn Fn(&str) -> bool) -> SymbolTable {
    let mut tab = SymbolTable {
        owner: files.iter().map(|f| vec![None; f.tokens.len()]).collect(),
        ..SymbolTable::default()
    };

    for (fx, file) in files.iter().enumerate() {
        if file.kind != FileKind::Library || !include(&file.crate_name) {
            continue;
        }
        tab.files_used.push(fx);
        extract_file(fx, file, &mut tab);
    }

    for (ix, f) in tab.fns.iter().enumerate() {
        tab.by_name
            .entry(f.name.clone())
            .or_default()
            .push(ix as u32);
    }
    tab
}

fn extract_file(fx: usize, file: &SourceFile, tab: &mut SymbolTable) {
    let toks = &file.tokens;
    let mut depth: i32 = 0;
    // (fn id, brace depth at body open).
    let mut fn_stack: Vec<(u32, i32)> = Vec::new();
    let mut pending: Option<FnSym> = None;

    let ident_at = |i: usize| toks.get(i).and_then(|t| t.kind.ident());

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if file.is_test_code(i) {
            // Still track braces so fn_stack depths stay consistent across
            // test regions embedded in library files.
            match &t.kind {
                TokenKind::Open('{') => depth += 1,
                TokenKind::Close('}') => {
                    depth -= 1;
                    if fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                        fn_stack.pop();
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        match &t.kind {
            TokenKind::Ident(s) => match s.as_str() {
                "fn" => {
                    if let Some(name) = ident_at(i + 1) {
                        pending = Some(FnSym {
                            name: name.to_string(),
                            file: fx,
                            crate_name: file.crate_name.clone(),
                            path: file.path.clone(),
                            line: t.line,
                            is_pub: is_pub_before(file, i),
                        });
                    }
                }
                "struct" | "enum" | "trait" | "union" => {
                    if let Some(name) = ident_at(i + 1) {
                        tab.types.entry(name.to_string()).or_default().insert(fx);
                    }
                }
                "impl" => {
                    for name in impl_targets(file, i) {
                        tab.types.entry(name).or_default().insert(fx);
                    }
                }
                name if !CALLISH_KEYWORDS.contains(&name) => {
                    if let Some(call) = call_at(file, i, &fn_stack) {
                        tab.calls.push(call);
                    }
                }
                _ => {}
            },
            TokenKind::Punct(";") => {
                // Body-less item (trait method decl, extern fn).
                pending = None;
            }
            TokenKind::Open('{') => {
                if let Some(sym) = pending.take() {
                    let id = tab.fns.len() as u32;
                    tab.fns.push(sym);
                    fn_stack.push((id, depth));
                }
                depth += 1;
            }
            TokenKind::Close('}') => {
                depth -= 1;
                if fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                    fn_stack.pop();
                }
            }
            _ => {}
        }
        tab.owner[fx][i] = fn_stack.last().map(|&(id, _)| id);
        i += 1;
    }
}

/// A `pub` / `pub(crate)` marker within the few tokens before the `fn`.
fn is_pub_before(file: &SourceFile, fn_ix: usize) -> bool {
    (1..=6).any(|back| {
        fn_ix
            .checked_sub(back)
            .and_then(|j| file.tokens.get(j))
            .is_some_and(|p| p.kind.ident() == Some("pub"))
    })
}

/// The type names an `impl` block targets: `impl Foo`, `impl<T> Foo<T>`,
/// `impl Trait for Foo` (records both `Trait` and `Foo`).
fn impl_targets(file: &SourceFile, impl_ix: usize) -> Vec<String> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut angle: i32 = 0;
    let mut j = impl_ix + 1;
    // Scan to the body/brace; collect idents at angle depth 0.
    while j < toks.len() && out.len() < 4 {
        match &toks[j].kind {
            TokenKind::Open('{') if angle <= 0 => break,
            TokenKind::Punct("<") => angle += 1,
            TokenKind::Punct("<<") => angle += 2,
            TokenKind::Punct(">") => angle -= 1,
            TokenKind::Punct(">>") => angle -= 2,
            TokenKind::Ident(s) if angle <= 0 => {
                let skip = matches!(s.as_str(), "dyn" | "const" | "unsafe" | "for" | "where");
                if s == "where" {
                    break;
                }
                if !skip && s.chars().next().is_some_and(char::is_uppercase) {
                    out.push(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Classify token `i` as a call site, if it is one: an identifier directly
/// followed by `(` (or a `::<...>(` turbofish), not itself a definition, and
/// inside some function body.
fn call_at(file: &SourceFile, i: usize, fn_stack: &[(u32, i32)]) -> Option<CallSite> {
    let toks = &file.tokens;
    let &(caller, _) = fn_stack.last()?;
    let name = toks[i].kind.ident()?;

    // Direct `name(` or turbofish `name::<T>(`.
    let open = match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokenKind::Open('(')) => true,
        Some(TokenKind::Punct("::")) if toks.get(i + 2).is_some_and(|t| t.kind.is_punct("<")) => {
            let mut angle = 1i32;
            let mut j = i + 3;
            while j < toks.len() && angle > 0 && j < i + 40 {
                match &toks[j].kind {
                    TokenKind::Punct("<") => angle += 1,
                    TokenKind::Punct("<<") => angle += 2,
                    TokenKind::Punct(">") => angle -= 1,
                    TokenKind::Punct(">>") => angle -= 2,
                    _ => {}
                }
                j += 1;
            }
            angle <= 0 && toks.get(j).is_some_and(|t| t.kind == TokenKind::Open('('))
        }
        _ => false,
    };
    if !open {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if i > 0 && toks[i - 1].kind.ident() == Some("fn") {
        return None;
    }

    let (method, qualifier) = match i.checked_sub(1).map(|j| &toks[j].kind) {
        Some(TokenKind::Punct(".")) => (true, None),
        Some(TokenKind::Punct("::")) => {
            let q = i
                .checked_sub(2)
                .and_then(|j| toks.get(j))
                .and_then(|t| t.kind.ident())
                .map(str::to_string);
            (false, q)
        }
        _ => (false, None),
    };
    Some(CallSite {
        caller,
        name: name.to_string(),
        qualifier,
        method,
        line: toks[i].line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tab(src: &str) -> SymbolTable {
        let f = SourceFile::parse("m.rs", "demo", FileKind::Library, src);
        extract(&[f], &|_| true)
    }

    #[test]
    fn defs_calls_and_owners() {
        let t =
            tab("pub fn outer() { helper(1); }\nfn helper(x: u32) -> u32 { x.wrapping_add(1) }\n");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "outer");
        assert!(t.fns[0].is_pub);
        assert!(!t.fns[1].is_pub);
        let call = t.calls.iter().find(|c| c.name == "helper").expect("call");
        assert_eq!(call.caller, 0);
        assert!(!call.method);
        let m = t
            .calls
            .iter()
            .find(|c| c.name == "wrapping_add")
            .expect("method call");
        assert!(m.method);
        assert_eq!(m.caller, 1);
    }

    #[test]
    fn qualifier_hints_are_kept() {
        let t = tab("fn f() { marray::reduce(1); NdArray::zeros(2); }\n");
        let q: Vec<Option<&str>> = t.calls.iter().map(|c| c.qualifier.as_deref()).collect();
        assert!(q.contains(&Some("marray")));
        assert!(q.contains(&Some("NdArray")));
    }

    #[test]
    fn impl_and_struct_targets_are_typed() {
        let t = tab("struct Foo;\nimpl Foo { fn a(&self) {} }\nimpl Clone for Bar { fn clone(&self) -> Bar { Bar } }\n");
        assert!(t.types.contains_key("Foo"));
        assert!(t.types.contains_key("Bar"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let t = tab("fn live() { x(); }\n#[cfg(test)]\nmod tests {\n    fn t() { hidden(); }\n}\n");
        assert_eq!(t.fns.len(), 1);
        assert!(t.calls.iter().all(|c| c.name != "hidden"));
    }

    #[test]
    fn trait_decls_do_not_open_bodies() {
        let t = tab("trait T { fn decl(&self); }\nfn real() { a(); }\n");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "real");
    }

    #[test]
    fn turbofish_call_is_detected() {
        let t = tab("fn f() { parse::<u32>(\"1\"); }\n");
        assert!(t.calls.iter().any(|c| c.name == "parse"));
    }
}
