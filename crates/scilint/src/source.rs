//! The per-file source model: lexed tokens plus the structural context the
//! rules need — `#[cfg(test)]` regions, enclosing-function names, and
//! parsed `// scilint: allow(...)` suppressions.

use crate::lex::{lex, Comment, Token, TokenKind};
use crate::rules::RULES;

/// What part of a crate a file belongs to. Rules only fire on
/// [`FileKind::Library`] code; the other kinds are still lexed because
/// cross-file rules (H002) search them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` — library code, fully linted.
    Library,
    /// `tests/**` — integration tests, exempt but searchable.
    Test,
    /// `benches/**` — benchmarks, exempt.
    Bench,
    /// `examples/**` — examples, exempt.
    Example,
}

/// A parsed `// scilint: allow(RULE, reason)` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the comment.
    pub line: u32,
    /// Last line the suppression covers: the end of the statement that
    /// follows the comment (so multi-line chained calls and signatures stay
    /// covered), and never less than `line + 1`.
    pub end_line: u32,
}

impl Suppression {
    /// True when the suppression covers findings on `line`.
    pub fn covers(&self, line: u32) -> bool {
        self.line <= line && line <= self.end_line
    }
}

/// A malformed suppression (missing reason or unknown rule id).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the offending comment.
    pub line: u32,
    /// `S001` (no reason) or `S002` (unknown rule).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in findings.
    pub path: String,
    /// Owning crate, as profiled (directory name under `crates/`).
    pub crate_name: String,
    /// Library / test / bench / example.
    pub kind: FileKind,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
    /// Per-token flag: inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: Vec<bool>,
    /// Per-token innermost enclosing function name (index into `fn_names`).
    pub enclosing_fn: Vec<Option<u32>>,
    /// Function-name table for `enclosing_fn`.
    pub fn_names: Vec<String>,
    /// Well-formed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppressions (always reported).
    pub bad_suppressions: Vec<BadSuppression>,
}

impl SourceFile {
    /// Lex and annotate one file.
    pub fn parse(path: &str, crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        let lexed = lex(src);
        let (in_test, enclosing_fn, fn_names) = annotate(&lexed.tokens);
        let (mut suppressions, bad_suppressions) = parse_suppressions(&lexed.comments);
        for s in &mut suppressions {
            s.end_line = statement_end(&lexed.tokens, s.line).max(s.line + 1);
        }
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            tokens: lexed.tokens,
            comments: lexed.comments,
            in_test,
            enclosing_fn,
            fn_names,
            suppressions,
            bad_suppressions,
        }
    }

    /// True when token `i` is in code the rules should skip (test regions).
    pub fn is_test_code(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Name of the innermost function containing token `i`, if any.
    pub fn fn_name_at(&self, i: usize) -> Option<&str> {
        self.enclosing_fn
            .get(i)
            .copied()
            .flatten()
            .map(|ix| self.fn_names[ix as usize].as_str())
    }
}

/// Single pass over the token stream computing, for every token, whether it
/// sits inside a `#[cfg(test)]`/`#[test]` item and which function encloses
/// it.
#[allow(clippy::type_complexity)]
fn annotate(tokens: &[Token]) -> (Vec<bool>, Vec<Option<u32>>, Vec<String>) {
    let mut in_test = vec![false; tokens.len()];
    let mut enclosing = vec![None; tokens.len()];
    let mut fn_names: Vec<String> = Vec::new();

    let mut depth: i32 = 0;
    // Open test regions: brace depth at which each region's body started.
    let mut test_stack: Vec<i32> = Vec::new();
    // (fn-name index, depth at body open).
    let mut fn_stack: Vec<(u32, i32)> = Vec::new();
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Detect `#[cfg(test)` and `#[test]` attribute prefixes.
        if t.kind.is_punct("#")
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Open('['))
            )
        {
            let a = tokens.get(i + 2).and_then(|t| t.kind.ident());
            let b = tokens.get(i + 4).and_then(|t| t.kind.ident());
            if a == Some("test") || (a == Some("cfg") && b == Some("test")) {
                pending_test = true;
            }
        }
        match &t.kind {
            TokenKind::Ident(s) if s == "fn" => {
                if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                    pending_fn = Some(name.clone());
                }
            }
            TokenKind::Punct(";") => {
                // A no-body item (`#[cfg(test)] use x;`, trait method decl)
                // consumed any pending attribute or fn header.
                pending_fn = None;
                pending_test = false;
            }
            TokenKind::Open('{') => {
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
                if let Some(name) = pending_fn.take() {
                    let ix = fn_names.len() as u32;
                    fn_names.push(name);
                    fn_stack.push((ix, depth));
                }
                depth += 1;
            }
            TokenKind::Close('}') => {
                depth -= 1;
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                if fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                    fn_stack.pop();
                }
            }
            _ => {}
        }
        in_test[i] = !test_stack.is_empty() || pending_test;
        enclosing[i] = fn_stack.last().map(|&(ix, _)| ix);
        i += 1;
    }
    (in_test, enclosing, fn_names)
}

/// Last line of the statement (or item) a suppression on `from_line`
/// targets: scan from the first token at or after that line to the first
/// `;` or `,` at the scan's own delimiter depth, the `}` closing the first
/// top-level brace group (so a fn/impl/match *body* is part of its item's
/// span), or a `}` closing the enclosing block. Multi-line chained calls,
/// long signatures, and whole items are thus covered to their end instead
/// of only "the next line" — an allow above `fn f()` covers all of `f`,
/// the way an `#[allow]` attribute would.
fn statement_end(tokens: &[Token], from_line: u32) -> u32 {
    let start = tokens.partition_point(|t| t.line < from_line);
    let mut last = from_line;

    // Item heads (`pub fn f<A, B>(...) -> Result<X, Y> {`) legitimately
    // contain `,` outside any bracket pair the lexer pairs up (generics are
    // plain `<` `>` puncts), so for items the span runs to the end of the
    // body's balanced brace group instead of stopping at punctuation.
    let is_item = tokens[start..].iter().take(6).any(|t| {
        matches!(
            t.kind.ident(),
            Some("fn" | "impl" | "mod" | "struct" | "enum" | "trait" | "union")
        )
    }) || tokens.get(start).is_some_and(|t| t.kind.is_punct("#"));

    let mut depth: i32 = 0;
    let mut entered_body = false;
    for t in &tokens[start..] {
        last = t.line;
        match &t.kind {
            TokenKind::Open(c) => {
                if is_item && *c == '{' && depth == 0 {
                    entered_body = true;
                }
                depth += 1;
            }
            TokenKind::Close(c) => {
                if depth == 0 {
                    // The enclosing block ended before the statement did.
                    return last;
                }
                depth -= 1;
                if depth == 0 && *c == '}' && (entered_body || !is_item) {
                    // A top-level `{ ... }` body closed: end of the item
                    // (or of a block statement such as a whole `match`).
                    return last;
                }
            }
            TokenKind::Punct(";") if depth == 0 => return last,
            TokenKind::Punct(",") if depth == 0 && !is_item => return last,
            _ => {}
        }
    }
    last
}

/// Parse `scilint: allow(RULE, reason)` out of comment text.
fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Directives are plain comments only; doc comments merely *describe*
        // the syntax and must never parse as suppressions.
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find("scilint:") else {
            continue;
        };
        let rest = c.text[pos + "scilint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            bad.push(BadSuppression {
                line: c.line,
                code: "S001",
                message: format!(
                    "malformed scilint comment: expected `allow(RULE, reason)`, got `{rest}`"
                ),
            });
            continue;
        };
        let args = args.trim_start();
        let inner = args
            .strip_prefix('(')
            .and_then(|s| s.rfind(')').map(|e| &s[..e]));
        let Some(inner) = inner else {
            bad.push(BadSuppression {
                line: c.line,
                code: "S001",
                message: "malformed scilint allow: missing parentheses".to_string(),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if !RULES.iter().any(|r| r.id == rule) {
            bad.push(BadSuppression {
                line: c.line,
                code: "S002",
                message: format!("scilint allow names unknown rule `{rule}`"),
            });
            continue;
        }
        if reason.is_empty() {
            bad.push(BadSuppression {
                line: c.line,
                code: "S001",
                message: format!(
                    "scilint allow({rule}) has no reason; write `scilint: allow({rule}, why)`"
                ),
            });
            continue;
        }
        good.push(Suppression {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: c.line,
            // Refined to the enclosing statement's end by the caller, which
            // has the token stream.
            end_line: c.line + 1,
        });
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("mem.rs", "demo", FileKind::Library, src)
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let f = parse(
            "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n fn t() { b(); }\n}\nfn live2() { c(); }\n",
        );
        let a = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("a"))
            .expect("a");
        let b = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("b"))
            .expect("b");
        let c = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("c"))
            .expect("c");
        assert!(!f.is_test_code(a));
        assert!(f.is_test_code(b));
        assert!(!f.is_test_code(c));
    }

    #[test]
    fn enclosing_fn_names() {
        let f = parse("fn outer() { inner_call(); }\nfn other() { x(); }");
        let call = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("inner_call"))
            .expect("call");
        assert_eq!(f.fn_name_at(call), Some("outer"));
        let x = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("x"))
            .expect("x");
        assert_eq!(f.fn_name_at(x), Some("other"));
    }

    #[test]
    fn suppression_with_reason_parses() {
        let f = parse("// scilint: allow(D001, lookup-only map, order never observed)\nlet x = 1;");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "D001");
        assert!(f.suppressions[0].reason.contains("lookup-only"));
        assert!(f.bad_suppressions.is_empty());
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let f = parse("// scilint: allow(D001)\nlet x = 1;");
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_suppressions.len(), 1);
        assert_eq!(f.bad_suppressions[0].code, "S001");
    }

    #[test]
    fn suppression_spans_multiline_statement() {
        let f = parse(
            "// scilint: allow(H001, reason here)\nlet x = foo()\n    .bar()\n    .unwrap();\nlet y = 1;\n",
        );
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert!(s.covers(4), "chained-call end uncovered: {s:?}");
        assert!(!s.covers(5), "next statement must not be covered: {s:?}");
    }

    #[test]
    fn suppression_spans_whole_item_body() {
        let f = parse(
            "// scilint: allow(F001, boundary)\nfn driver() {\n    step()\n        .unwrap();\n}\nfn other() {}\n",
        );
        let s = &f.suppressions[0];
        assert!(s.covers(5), "fn body end uncovered: {s:?}");
        assert!(!s.covers(6), "next item must not be covered: {s:?}");
    }

    #[test]
    fn suppression_at_block_end_stays_minimal() {
        let f = parse("fn f() {\n    let x = 1;\n    // scilint: allow(D001, stale)\n}\n");
        let s = &f.suppressions[0];
        // The enclosing block closes immediately; span stays line..=line+1.
        assert_eq!(s.end_line, s.line + 1, "{s:?}");
    }

    #[test]
    fn suppression_with_unknown_rule_is_rejected() {
        let f = parse("// scilint: allow(Z999, because)\nlet x = 1;");
        assert_eq!(f.bad_suppressions.len(), 1);
        assert_eq!(f.bad_suppressions[0].code, "S002");
    }
}
