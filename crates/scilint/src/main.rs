//! The `scilint` binary: CI gate over the workspace sources.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use scilint::rules::RULES;

const USAGE: &str =
    "usage: scilint [--root PATH] [--flow] [--purity] [--json] [--quiet] [--list-rules]

  --root PATH    workspace root to analyze (default: .)
  --flow         interprocedural view: gate on the F-family only and report
                 witness call chains; with --json, emit sciflow/v1
  --purity       purity view: print every pub fn's purity verdict
                 (pure/det_impure/ambient_read/nondet) with witness chains
                 for the non-memoizable ones; informational, always exit 0
  --json         print the machine-readable report to stdout
                 (scilint/v1, or sciflow/v1 under --flow)
  --quiet        suppress the per-finding listing (summary only)
  --list-rules   print the rule table and exit
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut quiet = false;
    let mut flow = false;
    let mut purity = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("scilint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--flow" => flow = true,
            "--purity" => purity = true,
            "--list-rules" => {
                for r in &RULES {
                    println!("{}  [{}]  {}", r.id, r.family.name(), r.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("scilint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if purity {
        // Purity view: the memoization-soundness half of scimemo. Every
        // pub fn's verdict, witness chains for the non-memoizable ones.
        let table = match scilint::purity::analyze_workspace(&root) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "scilint: failed to read workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        };
        if !quiet {
            for v in table.verdicts.iter().filter(|v| v.is_pub) {
                println!(
                    "{:<12} {}::{} ({}:{})",
                    v.level.name(),
                    v.crate_name,
                    v.name,
                    v.path,
                    v.line
                );
                if !v.level.memoizable() {
                    let names: Vec<&str> = v.witness.iter().map(|h| h.name.as_str()).collect();
                    println!(
                        "             witness: {} -> `{}`",
                        names.join(" -> "),
                        v.sink
                    );
                }
            }
        }
        let s = table.summary();
        println!(
            "purity: {} fns — {} pure, {} det_impure, {} ambient_read, {} nondet",
            table.verdicts.len(),
            s["pure"],
            s["det_impure"],
            s["ambient_read"],
            s["nondet"]
        );
        return ExitCode::SUCCESS;
    }

    let report = match scilint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "scilint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if flow {
        // Flow view: sciflow/v1 JSON, witness-chain listing, F-only gate.
        if json {
            print!("{}", report.to_flow_json());
        }
        if !quiet && !report.is_flow_clean() {
            eprint!("{}", report.flow_listing());
        }
        eprint!("{}", report.flow_summary());
        return if report.is_flow_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    if json {
        print!("{}", report.to_json());
    }
    if !quiet && !report.findings.is_empty() {
        eprint!("{}", report.listing());
    }
    eprint!("{}", report.crate_summary());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
