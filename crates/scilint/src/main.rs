//! The `scilint` binary: CI gate over the workspace sources.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use scilint::rules::RULES;

const USAGE: &str = "usage: scilint [--root PATH] [--flow] [--json] [--quiet] [--list-rules]

  --root PATH    workspace root to analyze (default: .)
  --flow         interprocedural view: gate on the F-family only and report
                 witness call chains; with --json, emit sciflow/v1
  --json         print the machine-readable report to stdout
                 (scilint/v1, or sciflow/v1 under --flow)
  --quiet        suppress the per-finding listing (summary only)
  --list-rules   print the rule table and exit
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut quiet = false;
    let mut flow = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("scilint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--flow" => flow = true,
            "--list-rules" => {
                for r in &RULES {
                    println!("{}  [{}]  {}", r.id, r.family.name(), r.description);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("scilint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match scilint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "scilint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if flow {
        // Flow view: sciflow/v1 JSON, witness-chain listing, F-only gate.
        if json {
            print!("{}", report.to_flow_json());
        }
        if !quiet && !report.is_flow_clean() {
            eprint!("{}", report.flow_listing());
        }
        eprint!("{}", report.flow_summary());
        return if report.is_flow_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    if json {
        print!("{}", report.to_json());
    }
    if !quiet && !report.findings.is_empty() {
        eprint!("{}", report.listing());
    }
    eprint!("{}", report.crate_summary());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
