//! The approximate call graph behind sciflow.
//!
//! Resolution is by name plus two hints, and is *deliberately
//! over-approximate*: when the tokens cannot tell which function a call
//! lands on, the graph keeps every candidate edge rather than dropping the
//! call. An edge that does not exist at runtime can only make the effect
//! analysis report *more*, never less — the right polarity for a gate.
//!
//! The resolution ladder for a call to `name`:
//!
//! 1. `self::name` / `crate::name` / `Self::name` → definitions named
//!    `name` in the caller's crate.
//! 2. `qual::name` where `qual` matches a workspace crate's import name
//!    (`engine_rdd`, `scibench_core`, ...) → that crate's definitions.
//! 3. `qual::name` where `qual` is a known-`std` path segment (`std`,
//!    `thread`, `cmp`, ...) → external, no edge (sinks inside such calls
//!    are caught by the token-level seed scan instead).
//! 4. `Type::name` where some workspace file defines or impls `Type` →
//!    definitions named `name` in those files.
//! 5. `Type::name` where `Type` is capitalized but no workspace file
//!    defines or impls it → external, no edge. A capitalized qualifier is
//!    a type path, and every workspace type appears in the type table, so
//!    an unknown one is `std`/third-party (`Mutex::new`, `Vec::from`).
//!    Fanning those out used to taint every same-named workspace fn —
//!    one ambient read inside any constructor named `new` poisoned every
//!    `new` in the workspace through `Mutex::new(..)` call sites.
//! 6. Method calls `recv.name(...)` and plain `name(...)` → same-*file*
//!    definitions when any exist (a local definition always shadows
//!    anything imported, and a same-file method is the overwhelmingly
//!    likely receiver), else same-crate definitions, else every workspace
//!    definition named `name` (covers `use`-imported free functions and
//!    cross-crate methods; receiver types are unknown at token level).
//!
//! Known blind spots (see DESIGN.md §3.12): trait-object dispatch and fn
//! pointers produce no call token and therefore no edge; closures are
//! attributed to the defining function.

use std::collections::BTreeSet;

use crate::symbols::SymbolTable;

/// `std` path segments that mark a qualified call as external.
const EXTERNAL_QUALIFIERS: [&str; 36] = [
    "std",
    "core",
    "alloc",
    "thread",
    "time",
    "fs",
    "io",
    "env",
    "process",
    "mem",
    "cmp",
    "fmt",
    "str",
    "slice",
    "iter",
    "collections",
    "num",
    "sync",
    "ops",
    "array",
    "vec",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i32",
    "i64",
    "char",
    "ptr",
    "convert",
    "atomic",
    "mpsc",
    "hash",
];

/// Map a path qualifier to the workspace crate directory name it imports
/// (`engine_rdd` → `engine-rdd`, `scibench_core` → `core`).
fn crate_for_qualifier(q: &str) -> String {
    match q {
        "scibench_core" => "core".to_string(),
        "scibench_bench" => "bench".to_string(),
        other => other.replace('_', "-"),
    }
}

/// The call graph: `edges[f]` is the set of functions `f` may call.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency, indexed by [`SymbolTable::fns`] id.
    pub edges: Vec<BTreeSet<u32>>,
    /// Total edge count (for reporting).
    pub edge_count: usize,
}

impl CallGraph {
    /// Reverse adjacency, for backward effect propagation.
    pub fn reversed(&self) -> Vec<BTreeSet<u32>> {
        let mut rev: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); self.edges.len()];
        for (from, outs) in self.edges.iter().enumerate() {
            for &to in outs {
                rev[to as usize].insert(from as u32);
            }
        }
        rev
    }
}

/// Build the call graph over `tab` using the resolution ladder above.
pub fn build(tab: &SymbolTable) -> CallGraph {
    let crate_names: BTreeSet<&str> = tab.fns.iter().map(|f| f.crate_name.as_str()).collect();
    let mut graph = CallGraph {
        edges: vec![BTreeSet::new(); tab.fns.len()],
        ..CallGraph::default()
    };

    for call in &tab.calls {
        let Some(cands) = tab.by_name.get(&call.name) else {
            continue; // external or std — no workspace definition
        };
        let caller_crate = &tab.fns[call.caller as usize].crate_name;
        let targets: Vec<u32> = if let Some(q) = &call.qualifier {
            // The external check runs before the crate match: the workspace
            // `core` crate imports as `scibench_core`, so a bare `core::`
            // path is always `std`-core.
            let as_crate = crate_for_qualifier(q);
            if q == "self" || q == "crate" || q == "Self" {
                same_crate(tab, cands, caller_crate)
            } else if EXTERNAL_QUALIFIERS.contains(&q.as_str()) {
                Vec::new()
            } else if crate_names.contains(as_crate.as_str()) {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| tab.fns[c as usize].crate_name == as_crate)
                    .collect()
            } else if let Some(files) = tab.types.get(q) {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| files.contains(&tab.fns[c as usize].file))
                    .collect()
            } else if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                // Capitalized qualifier naming no workspace type: a std or
                // third-party type path (`Mutex::new`). Every workspace
                // type is in the type table, so no edge — fanning out here
                // would taint every same-named workspace fn.
                Vec::new()
            } else {
                // Unknown lowercase qualifier: a module path the table
                // cannot place. Over-approximate to every candidate.
                cands.clone()
            }
        } else {
            // Method calls and plain calls share the same-file →
            // same-crate → whole-workspace ladder. Rust scoping makes the
            // first rung exact for plain calls (a definition in the
            // calling module shadows any imported name) and the right
            // per-(crate, file) narrowing for methods: when the caller's
            // own file or crate defines `name`, a workspace-wide fan-out
            // would mis-resolve witness chains through unrelated crates.
            let caller_file = tab.fns[call.caller as usize].file;
            let in_file: Vec<u32> = cands
                .iter()
                .copied()
                .filter(|&c| tab.fns[c as usize].file == caller_file)
                .collect();
            if !in_file.is_empty() {
                in_file
            } else {
                let local = same_crate(tab, cands, caller_crate);
                if local.is_empty() {
                    cands.clone()
                } else {
                    local
                }
            }
        };
        for t in targets {
            if graph.edges[call.caller as usize].insert(t) {
                graph.edge_count += 1;
            }
        }
    }
    graph
}

fn same_crate(tab: &SymbolTable, cands: &[u32], krate: &str) -> Vec<u32> {
    cands
        .iter()
        .copied()
        .filter(|&c| tab.fns[c as usize].crate_name == krate)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use crate::symbols::extract;

    fn graph_of(files: &[(&str, &str, &str)]) -> (SymbolTable, CallGraph) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, src)| SourceFile::parse(path, krate, FileKind::Library, src))
            .collect();
        let tab = extract(&parsed, &|_| true);
        let g = build(&tab);
        (tab, g)
    }

    fn fn_ix(tab: &SymbolTable, name: &str) -> u32 {
        tab.by_name.get(name).expect("fn known")[0]
    }

    #[test]
    fn plain_call_prefers_same_crate() {
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { work(); }\nfn work() {}\n"),
            ("b.rs", "cb", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].crate_name, "ca");
    }

    #[test]
    fn plain_call_prefers_same_file_over_same_crate() {
        // `root` and a local `work` share a file; a second `work` lives in
        // another file of the same crate. The local definition shadows it,
        // so the edge must land on the same-file `work` only.
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { work(); }\nfn work() {}\n"),
            ("a2.rs", "ca", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].path, "a.rs");
    }

    #[test]
    fn same_crate_shadowing_of_workspace_unique_name_resolves_locally() {
        // Regression: crate `ca` defines its own `lookup` (in another file)
        // shadowing a name that is otherwise unique to crate `cb`. The call
        // must resolve inside `ca`, not to `cb`'s workspace-unique fn —
        // otherwise a sink inside cb::lookup would be blamed on ca's
        // witness chains.
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { lookup(); }\n"),
            ("a2.rs", "ca", "fn lookup() {}\n"),
            (
                "b.rs",
                "cb",
                "pub fn lookup() { let _ = Instant::now(); }\n",
            ),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].crate_name, "ca");
    }

    #[test]
    fn plain_call_without_local_def_still_fans_out_workspace_wide() {
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { imported(); }\n"),
            ("b.rs", "cb", "pub fn imported() {}\n"),
            ("c.rs", "cc", "pub fn imported() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        assert_eq!(g.edges[root as usize].len(), 2);
    }

    #[test]
    fn method_call_without_local_def_still_fans_out_workspace_wide() {
        // The caller's crate defines no `work`, so the ladder bottoms out
        // at the workspace rung: both candidates stay (receiver types are
        // unknown at token level, and dropping the call would be unsound).
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root(x: T) { x.work(); }\n"),
            ("b.rs", "cb", "fn work() {}\n"),
            ("c.rs", "cc", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        assert_eq!(g.edges[root as usize].len(), 2);
    }

    #[test]
    fn method_call_prefers_same_file_then_same_crate() {
        // Regression for the `new`-taint gotcha: a method call resolves
        // per (crate, file) like a plain call, so a same-named method in
        // an unrelated crate no longer receives an edge.
        let (tab, g) = graph_of(&[
            (
                "a.rs",
                "ca",
                "pub fn root(x: T) { x.work(); }\nfn work() {}\n",
            ),
            ("b.rs", "cb", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].crate_name, "ca");
    }

    #[test]
    fn unknown_capitalized_qualifier_is_external() {
        // `Mutex` impls no workspace type, so `Mutex::new()` is a std
        // constructor: no edge, instead of a workspace-wide fan-out to
        // every fn named `new`.
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { let _ = Mutex::new(0); }\n"),
            ("b.rs", "cb", "impl Server { pub fn new() {} }\n"),
        ]);
        let root = fn_ix(&tab, "root");
        assert!(g.edges[root as usize].is_empty());
    }

    #[test]
    fn unknown_lowercase_qualifier_still_fans_out() {
        // A lowercase qualifier is a module path the type table cannot
        // place; the over-approximation keeps every candidate.
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { pipeline::merge(); }\n"),
            ("b.rs", "cb", "pub fn merge() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        assert_eq!(g.edges[root as usize].len(), 1);
    }

    #[test]
    fn crate_qualifier_narrows() {
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { engine_rdd::work(); }\n"),
            ("b.rs", "engine-rdd", "fn work() {}\n"),
            ("c.rs", "cc", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].crate_name, "engine-rdd");
    }

    #[test]
    fn type_qualifier_narrows_to_impl_files() {
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { Pool::work(); }\n"),
            ("b.rs", "cb", "struct Pool;\nimpl Pool { fn work() {} }\n"),
            ("c.rs", "cc", "fn work() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        let edges = &g.edges[root as usize];
        assert_eq!(edges.len(), 1);
        let target = *edges.iter().next().expect("edge");
        assert_eq!(tab.fns[target as usize].path, "b.rs");
    }

    #[test]
    fn std_qualified_calls_have_no_edge() {
        let (tab, g) = graph_of(&[
            ("a.rs", "ca", "pub fn root() { thread::spawn(|| {}); }\n"),
            ("b.rs", "cb", "fn spawn() {}\n"),
        ]);
        let root = fn_ix(&tab, "root");
        assert!(g.edges[root as usize].is_empty());
    }
}
