//! Per-crate rule profiles.
//!
//! Which rules a crate gets depends on its role in the workspace:
//!
//! * **Engine crates** (`engine-*`) simulate the paper's five systems; a
//!   hash-seed-dependent iteration order there makes "engine behaviour"
//!   depend on the process, so they get the full D family plus H001, and
//!   C001 (chunk payloads ride the shared zero-copy plane; a deep copy
//!   must be sanctioned or justified). Data-plane crates also get C002:
//!   the only sanctioned disk traffic on the data plane is the memory
//!   governor's spill tier in `marray/src/spill.rs`.
//! * **`sciops`** holds the numeric kernels: the N family applies there
//!   (and in `marray`, the array substrate), plus D-rules and the H002
//!   serial-twin contract for its `_par` kernels.
//! * **Infrastructure crates** (`formats`, `core`, `parexec`, `marray`,
//!   `simcluster`, `plancheck`, `scilint`, the root `scibench` package)
//!   get H001 and the D family where determinism matters.
//! * **`bench`** is the timing harness: reading the clock is its job, so
//!   it is fully exempt. `vendor/` shims are never walked at all.

/// Crates whose `_par` kernels must satisfy H002.
pub const KERNEL_CRATES: [&str; 1] = ["sciops"];

/// Crates whose `pub fn`s are sciflow entry points (F001–F004 roots): the
/// five engine analogs produce result payloads, `sciops` holds the kernels,
/// and `core` drives the use-case pipelines. Everything a pub fn of these
/// crates can reach — in any crate — is on a result path.
pub const FLOW_ROOT_CRATES: [&str; 7] = [
    "engine-array",
    "engine-dataflow",
    "engine-rdd",
    "engine-rel",
    "engine-taskgraph",
    "sciops",
    "core",
];

/// True when `crate_name`'s pub fns seed the sciflow reachability BFS.
pub fn flow_root(crate_name: &str) -> bool {
    FLOW_ROOT_CRATES.contains(&crate_name)
}

/// Crates excluded from the sciflow call graph entirely: the bench harness
/// reads the clock and spawns by design and is never called by an engine.
pub fn flow_exempt(crate_name: &str) -> bool {
    crate_name == "bench"
}

/// Rule ids enabled for `crate_name`, or an empty slice when the crate is
/// exempt. Crate names are directory names under `crates/`; the workspace
/// root package is `"scibench"`.
pub fn rules_for(crate_name: &str) -> &'static [&'static str] {
    const ENGINE: &[&str] = &["D001", "D002", "D003", "H001", "C001", "C002"];
    const SCIOPS: &[&str] = &[
        "D001", "D002", "D003", "D004", "N001", "N002", "N003", "H001", "H002", "C002",
    ];
    const MARRAY: &[&str] = &["D001", "D002", "D003", "N001", "N003", "H001", "C002"];
    const PAREXEC: &[&str] = &["D001", "D003", "D004", "H001", "C002"];
    // Data-plane infrastructure: chunk handles flow through these crates,
    // so C002 pins their disk traffic to the governor's spill tier. The
    // tooling crates (scilint itself, plancheck, simcluster) read source
    // trees and stay on the plain INFRA profile.
    const DATA_INFRA: &[&str] = &["D001", "D003", "H001", "C002"];
    const INFRA: &[&str] = &["D001", "D003", "H001"];
    const HYGIENE_ONLY: &[&str] = &["H001"];
    const EXEMPT: &[&str] = &[];

    match crate_name {
        "engine-array" | "engine-rdd" | "engine-rel" | "engine-taskgraph" | "engine-dataflow" => {
            ENGINE
        }
        "sciops" => SCIOPS,
        "marray" => MARRAY,
        // parexec schedules threads and may legitimately time work; its
        // determinism contract is behavioural (tests), so D002 is off. D004
        // is on crate-wide: morsel.rs (the MorselPool internals) is the one
        // sanctioned spawn site, everything else routes through the pool.
        "parexec" => PAREXEC,
        // serve is resident infrastructure: D002 stays off because request
        // latency measurement is the service's job, but the hygiene and
        // determinism-container rules still apply.
        "serve" => DATA_INFRA,
        "simcluster" | "plancheck" | "scilint" => INFRA,
        // formats and core convert on purpose (N002 would be noise) but must
        // not panic on bad input, and core's use-case drivers feed results.
        // formats is the workspace's file-format crate: reading and writing
        // FITS/NIfTI files is its job, so C002 does not apply there.
        "formats" => HYGIENE_ONLY,
        "core" | "scibench" => DATA_INFRA,
        // The bench harness exists to read the clock and print.
        "bench" => EXEMPT,
        _ => HYGIENE_ONLY,
    }
}
