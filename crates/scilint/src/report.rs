//! Suppression filtering, per-crate summaries, and JSON output.

use std::collections::BTreeMap;

use crate::flow::{FlowFinding, FlowStats};
use crate::rules::{rule, Finding};
use crate::source::SourceFile;

/// The outcome of an analysis run: surviving findings plus bookkeeping.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that were not covered by a valid suppression, in
    /// (path, line, rule) order. Includes the F-family (flow) findings.
    pub findings: Vec<Finding>,
    /// Count of findings that *were* suppressed, per rule id.
    pub suppressed: BTreeMap<String, usize>,
    /// Number of files analyzed.
    pub files: usize,
    /// Surviving interprocedural findings with their witness chains (the
    /// same findings also appear in `findings`, chain rendered into the
    /// message).
    pub flow_findings: Vec<FlowFinding>,
    /// Call-graph and effect-lattice statistics from the flow pass.
    pub flow_stats: FlowStats,
}

impl Report {
    /// Apply the suppression policy to `raw` findings from `files`.
    ///
    /// A `// scilint: allow(RULE, reason)` comment covers findings of RULE
    /// from the comment's own line to the end of the statement that follows
    /// it (see [`crate::source::Suppression::covers`]), so multi-line
    /// chained calls and signatures cannot silently escape. Malformed
    /// suppressions (S001/S002) and suppressions that matched nothing
    /// (S003) become findings themselves, so the gate stays exact.
    pub fn build(files: &[SourceFile], mut raw: Vec<Finding>) -> Report {
        let mut report = Report {
            files: files.len(),
            ..Report::default()
        };

        for file in files {
            let mut used = vec![false; file.suppressions.len()];
            raw.retain(|f| {
                if f.path != file.path {
                    return true;
                }
                // Every covering suppression is marked used (stacked allows
                // above one statement must not go S003-stale), the finding
                // is counted suppressed once.
                let mut matched = false;
                for (ix, s) in file.suppressions.iter().enumerate() {
                    if s.rule == f.rule && s.covers(f.line) {
                        used[ix] = true;
                        if !matched {
                            *report.suppressed.entry(s.rule.clone()).or_insert(0) += 1;
                        }
                        matched = true;
                    }
                }
                !matched
            });
            for b in &file.bad_suppressions {
                raw.push(Finding {
                    rule: if b.code == "S002" { "S002" } else { "S001" },
                    path: file.path.clone(),
                    crate_name: file.crate_name.clone(),
                    line: b.line,
                    message: b.message.clone(),
                });
            }
            for (ix, s) in file.suppressions.iter().enumerate() {
                if !used[ix] {
                    raw.push(Finding {
                        rule: "S003",
                        path: file.path.clone(),
                        crate_name: file.crate_name.clone(),
                        line: s.line,
                        message: format!(
                            "allow({}) matched no finding; remove the stale suppression",
                            s.rule
                        ),
                    });
                }
            }
        }

        raw.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        report.findings = raw;
        report
    }

    /// True when the gate should pass.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One line per crate: `crate: N findings (rule×k ...), M suppressed` —
    /// the CI-log summary. Clean crates are folded into a single line.
    pub fn crate_summary(&self) -> String {
        let mut per_crate: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
        for f in &self.findings {
            *per_crate
                .entry(f.crate_name.as_str())
                .or_default()
                .entry(f.rule)
                .or_insert(0) += 1;
        }
        let mut out = String::new();
        for (krate, rules) in &per_crate {
            let detail = rules
                .iter()
                .map(|(r, n)| format!("{r}×{n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let total: usize = rules.values().sum();
            out.push_str(&format!(
                "scilint: {krate}: {total} finding(s) [{detail}]\n"
            ));
        }
        let suppressed: usize = self.suppressed.values().sum();
        out.push_str(&format!(
            "scilint: {} file(s), {} finding(s), {} suppressed\n",
            self.files,
            self.findings.len(),
            suppressed
        ));
        out
    }

    /// Full human-readable listing, one finding per line.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} [{}] {}\n",
                f.path,
                f.line,
                f.rule,
                rule(f.rule).map_or("?", |r| r.family.name()),
                f.message
            ));
        }
        out
    }

    /// Machine-readable report, schema `scilint/v1`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"scilint/v1\",\n");
        s.push_str(&format!("  \"files\": {},\n", self.files));
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        s.push_str("  \"suppressed\": {");
        let mut first = true;
        for (r, n) in &self.suppressed {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\n    \"{r}\": {n}"));
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"findings\": [");
        let mut first = true;
        for f in &self.findings {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"crate\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"message\": \"{}\"}}",
                f.rule,
                escape(&f.crate_name),
                escape(&f.path),
                f.line,
                escape(&f.message)
            ));
        }
        s.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        s
    }

    /// True when no F-family finding survived suppression.
    pub fn is_flow_clean(&self) -> bool {
        self.flow_findings.is_empty()
    }

    /// Human-readable flow listing: one finding per block, witness chain
    /// rendered hop by hop.
    pub fn flow_listing(&self) -> String {
        let mut out = String::new();
        for f in &self.flow_findings {
            out.push_str(&format!(
                "{}:{}: {} [{}] sink `{}`\n",
                f.path,
                f.line,
                f.rule,
                f.effect.name(),
                f.sink
            ));
            for (i, hop) in f.chain.iter().enumerate() {
                let marker = if i == 0 { "root" } else { "  ->" };
                out.push_str(&format!(
                    "    {marker} {} ({}:{})\n",
                    hop.name, hop.path, hop.line
                ));
            }
        }
        out
    }

    /// One-line flow summary for CI logs.
    pub fn flow_summary(&self) -> String {
        let t = &self.flow_stats.tagged;
        let suppressed: usize = self
            .suppressed
            .iter()
            .filter(|(r, _)| r.starts_with('F'))
            .map(|(_, n)| n)
            .sum();
        format!(
            "sciflow: {} fn(s), {} edge(s), {} root(s); tagged panics={} nondet={} copies={} \
             spawns={}; {} finding(s), {} suppressed\n",
            self.flow_stats.functions,
            self.flow_stats.edges,
            self.flow_stats.roots,
            t.get("panics").copied().unwrap_or(0),
            t.get("nondet").copied().unwrap_or(0),
            t.get("copies").copied().unwrap_or(0),
            t.get("spawns").copied().unwrap_or(0),
            self.flow_findings.len(),
            suppressed
        )
    }

    /// Machine-readable interprocedural report, schema `sciflow/v1`:
    /// call-graph stats, per-effect tagged-function counts, and every
    /// surviving finding with its structured witness chain.
    pub fn to_flow_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"sciflow/v1\",\n");
        s.push_str(&format!(
            "  \"functions\": {},\n",
            self.flow_stats.functions
        ));
        s.push_str(&format!("  \"edges\": {},\n", self.flow_stats.edges));
        s.push_str(&format!("  \"roots\": {},\n", self.flow_stats.roots));
        s.push_str("  \"tagged\": {");
        let mut first = true;
        for (e, n) in &self.flow_stats.tagged {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\n    \"{e}\": {n}"));
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str(&format!("  \"clean\": {},\n", self.is_flow_clean()));
        s.push_str("  \"suppressed\": {");
        let mut first = true;
        for (r, n) in self.suppressed.iter().filter(|(r, _)| r.starts_with('F')) {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\n    \"{r}\": {n}"));
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"findings\": [");
        let mut first = true;
        for f in &self.flow_findings {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"effect\": \"{}\", \"crate\": \"{}\", \
                 \"path\": \"{}\", \"line\": {}, \"sink\": \"{}\", \"chain\": [",
                f.rule,
                f.effect.name(),
                escape(&f.crate_name),
                escape(&f.path),
                f.line,
                escape(&f.sink)
            ));
            let mut first_hop = true;
            for hop in &f.chain {
                if !first_hop {
                    s.push_str(", ");
                }
                first_hop = false;
                s.push_str(&format!(
                    "{{\"fn\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
                    escape(&hop.name),
                    escape(&hop.path),
                    hop.line
                ));
            }
            s.push_str("]}");
        }
        s.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn lint_one(src: &str, enabled: &[&str]) -> Report {
        let f = SourceFile::parse("m.rs", "demo", FileKind::Library, src);
        let mut raw = Vec::new();
        crate::rules::check_file(&f, enabled, &mut raw);
        Report::build(&[f], raw)
    }

    #[test]
    fn suppression_consumes_finding() {
        let r = lint_one(
            "// scilint: allow(D001, lookup-only, order never observed)\nuse std::collections::HashMap;\n",
            &["D001"],
        );
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.suppressed.get("D001"), Some(&1));
    }

    #[test]
    fn stale_suppression_is_s003() {
        let r = lint_one(
            "// scilint: allow(D001, nothing here)\nlet x = 1;\n",
            &["D001"],
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "S003");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = lint_one("use std::collections::HashMap;\n", &["D001"]);
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"scilint/v1\""));
        assert!(j.contains("\"rule\": \"D001\""));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn summary_mentions_crate() {
        let r = lint_one("use std::collections::HashMap;\n", &["D001"]);
        let s = r.crate_summary();
        assert!(s.contains("demo"), "{s}");
        assert!(s.contains("D001"), "{s}");
    }
}
