//! The fixture corpus: every shipped rule id must fire on its `_bad`
//! fixture and stay silent on its `_good` fixture.
//!
//! Fixtures live in `fixtures/` (which the workspace walker skips) and are
//! parsed here under a crate profile that enables the rule under test.
//! Assertions are scoped to the target rule so a fixture exercising one
//! rule may freely mention constructs another rule would flag.

use std::path::Path;

use scilint::report::Report;
use scilint::rules::RULES;
use scilint::source::{FileKind, SourceFile};

fn fixture(name: &str, crate_name: &str, kind: FileKind) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    SourceFile::parse(name, crate_name, kind, &src)
}

fn analyze(files: &[SourceFile]) -> Report {
    scilint::analyze_files(files)
}

fn fires(report: &Report, rule: &str) -> bool {
    report.findings.iter().any(|f| f.rule == rule)
}

/// (rule, crate profile to parse under, bad fixture, good fixture).
///
/// The F-family fixtures parse under `engine-rdd` — a flow-root crate, so
/// their `pub fn entry` becomes an analysis root and the helper's sink is
/// reachable interprocedurally.
const SINGLE_FILE_CASES: [(&str, &str, &str, &str); 18] = [
    ("D001", "engine-rdd", "d001_bad.rs", "d001_good.rs"),
    ("D002", "engine-rdd", "d002_bad.rs", "d002_good.rs"),
    ("D003", "engine-rdd", "d003_bad.rs", "d003_good.rs"),
    ("D004", "sciops", "d004_bad.rs", "d004_good.rs"),
    ("D004", "parexec", "d004_pool_bad.rs", "d004_pool_good.rs"),
    ("N001", "sciops", "n001_bad.rs", "n001_good.rs"),
    ("N002", "sciops", "n002_bad.rs", "n002_good.rs"),
    ("N003", "sciops", "n003_bad.rs", "n003_good.rs"),
    ("H001", "formats", "h001_bad.rs", "h001_good.rs"),
    ("C001", "engine-rdd", "c001_bad.rs", "c001_good.rs"),
    (
        "C001",
        "engine-rdd",
        "c001_codec_bad.rs",
        "c001_codec_good.rs",
    ),
    ("C002", "marray", "c002_bad.rs", "c002_good.rs"),
    ("S001", "engine-rdd", "s001_bad.rs", "s001_good.rs"),
    ("S003", "engine-rdd", "s003_bad.rs", "s003_good.rs"),
    ("F001", "engine-rdd", "f001_bad.rs", "f001_good.rs"),
    ("F002", "engine-rdd", "f002_bad.rs", "f002_good.rs"),
    ("F003", "engine-rdd", "f003_bad.rs", "f003_good.rs"),
    ("F004", "engine-rdd", "f004_bad.rs", "f004_good.rs"),
];

#[test]
fn every_rule_fires_on_its_bad_fixture_and_not_on_its_good_one() {
    for (rule, crate_name, bad, good) in SINGLE_FILE_CASES {
        let report = analyze(&[fixture(bad, crate_name, FileKind::Library)]);
        assert!(fires(&report, rule), "{rule} silent on {bad}");
        let report = analyze(&[fixture(good, crate_name, FileKind::Library)]);
        assert!(
            !fires(&report, rule),
            "{rule} fired on {good}: {:?}",
            report.findings
        );
    }
}

#[test]
fn s002_unknown_rule_is_rejected_and_known_rule_accepted() {
    let report = analyze(&[fixture("s002_bad.rs", "sciops", FileKind::Library)]);
    assert!(fires(&report, "S002"), "unknown rule id accepted");
    let report = analyze(&[fixture("s002_good.rs", "sciops", FileKind::Library)]);
    assert!(!fires(&report, "S002"));
    assert!(
        report.is_clean(),
        "justified allow should fully suppress: {:?}",
        report.findings
    );
}

#[test]
fn h002_par_kernel_needs_twin_and_test_reference() {
    // Bad: a pub _par kernel with no serial twin and no test coverage
    // produces both H002 complaints.
    let report = analyze(&[fixture("h002_bad_lib.rs", "sciops", FileKind::Library)]);
    let h002: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "H002")
        .collect();
    assert_eq!(h002.len(), 2, "expected twin + test findings: {h002:?}");

    // Good: twin present, test file references the _par entry point.
    let report = analyze(&[
        fixture("h002_good_lib.rs", "sciops", FileKind::Library),
        fixture("h002_good_test.rs", "sciops", FileKind::Test),
    ]);
    assert!(
        !fires(&report, "H002"),
        "H002 fired on the good pair: {:?}",
        report.findings
    );
}

#[test]
fn d004_sanctions_morsel_rs_as_parexec_spawn_site() {
    // The same spawning code is legal inside the MorselPool internals —
    // morsel.rs is the crate's one sanctioned spawn site.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("d004_pool_bad.rs");
    let src = std::fs::read_to_string(&path).expect("fixture unreadable");
    let file = SourceFile::parse(
        "crates/parexec/src/morsel.rs",
        "parexec",
        FileKind::Library,
        &src,
    );
    let report = analyze(&[file]);
    assert!(
        !fires(&report, "D004"),
        "D004 fired inside the sanctioned spawn site: {:?}",
        report.findings
    );
}

#[test]
fn c002_sanctions_spill_rs_as_data_plane_io_site() {
    // The same file I/O is legal inside the governor's spill tier —
    // marray/src/spill.rs is the data plane's one sanctioned I/O site.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("c002_bad.rs");
    let src = std::fs::read_to_string(&path).expect("fixture unreadable");
    let file = SourceFile::parse(
        "crates/marray/src/spill.rs",
        "marray",
        FileKind::Library,
        &src,
    );
    let report = analyze(&[file]);
    assert!(
        !fires(&report, "C002"),
        "C002 fired inside the sanctioned spill-I/O site: {:?}",
        report.findings
    );
}

#[test]
fn allow_without_reason_is_rejected() {
    // The S001 contract end to end: the unsuppressed D001 finding survives
    // AND the reasonless allow itself is reported.
    let report = analyze(&[fixture("s001_bad.rs", "engine-rdd", FileKind::Library)]);
    assert!(fires(&report, "S001"), "reasonless allow accepted");
    assert!(
        fires(&report, "D001"),
        "a reasonless allow must not suppress anything"
    );
}

#[test]
fn two_hop_transitive_chain_is_witnessed_root_first() {
    // `chain_entry` never panics locally; the sink is two calls down. The
    // shortest witness chain must read root -> mid -> leaf and the finding
    // must anchor at the sink's line, where an allow would belong.
    let report = analyze(&[fixture("flow_chain.rs", "engine-rdd", FileKind::Library)]);
    assert!(fires(&report, "F001"), "two-hop sink not reached");
    let f = report
        .flow_findings
        .iter()
        .find(|f| f.rule == "F001")
        .expect("F001 flow finding with chain");
    let names: Vec<&str> = f.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        ["chain_entry", "mid", "leaf"],
        "witness chain wrong: {names:?}"
    );
    assert_eq!(f.sink, ".expect()");
    assert!(
        report.to_flow_json().contains("\"chain_entry\""),
        "sciflow/v1 JSON must carry the witness chain"
    );
}

#[test]
fn suppressed_boundary_is_flow_clean_and_allow_counts_as_used() {
    // A reasoned `allow(F001)` at the sink consumes the chain-anchored
    // finding: flow-clean, and no S003 stale-allow complaint either.
    for name in ["flow_boundary.rs", "flow_boundary_item.rs"] {
        let report = analyze(&[fixture(name, "engine-rdd", FileKind::Library)]);
        assert!(!fires(&report, "F001"), "{name}: allow did not suppress");
        assert!(report.is_flow_clean(), "{name}: flow gate not clean");
        assert!(
            report.is_clean(),
            "{name}: allow went stale or leaked a finding: {:?}",
            report.findings
        );
    }
}

#[test]
fn allow_span_covers_its_whole_multiline_statement() {
    // Regression for the span bug: the allow used to cover only its own
    // line plus one, so an unwrap three lines into the chained statement
    // escaped suppression (and the allow itself went S003-stale).
    let report = analyze(&[fixture("span_good.rs", "formats", FileKind::Library)]);
    assert!(
        report.is_clean(),
        "allow must span the chained statement: {:?}",
        report.findings
    );
}

#[test]
fn allow_span_ends_with_its_statement() {
    // The widened span must not over-reach: the second unwrap sits after
    // the suppressed statement and must still be reported.
    let report = analyze(&[fixture("span_bad.rs", "formats", FileKind::Library)]);
    let h001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "H001")
        .collect();
    assert_eq!(h001.len(), 1, "exactly the trailing unwrap: {h001:?}");
    assert!(
        !fires(&report, "S003"),
        "the allow did real work on the first statement"
    );
}

#[test]
fn every_shipped_rule_id_has_fixture_coverage() {
    let covered: Vec<&str> = SINGLE_FILE_CASES
        .iter()
        .map(|(r, ..)| *r)
        .chain(["S002", "H002"])
        .collect();
    for rule in &RULES {
        assert!(
            covered.contains(&rule.id),
            "rule {} has no fixture case",
            rule.id
        );
    }
}
