//! The gate as a test: the whole workspace — scilint's own sources
//! included — must be clean. This is the same analysis `scripts/ci.sh`
//! runs, so a rule violation anywhere fails `cargo test` too.

use std::path::Path;

#[test]
fn workspace_including_scilint_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/scilint sits two levels below the workspace root");
    let report = scilint::analyze_workspace(root).expect("workspace readable");
    assert!(
        report.files > 100,
        "walker found too few files — layout changed?"
    );
    assert!(
        report.is_clean(),
        "scilint findings in the workspace:\n{}",
        report.listing()
    );
    // Every suppression in the tree carries a reason by construction
    // (reasonless allows become S001 findings), so cleanliness here also
    // certifies the suppression policy.
    assert!(
        report.is_flow_clean(),
        "sciflow findings in the workspace:\n{}",
        report.flow_listing()
    );
}

#[test]
fn reports_are_deterministic_across_runs() {
    // The linter gates CI, so its output must be byte-stable: BTree maps
    // throughout, function ids in (path, token) order, findings tie-broken
    // by (path, line, rule). Two independent runs over the workspace must
    // serialize identically in both schemas.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/scilint sits two levels below the workspace root");
    let first = scilint::analyze_workspace(root).expect("workspace readable");
    let second = scilint::analyze_workspace(root).expect("workspace readable");
    assert_eq!(first.to_json(), second.to_json(), "scilint/v1 drifted");
    assert_eq!(
        first.to_flow_json(),
        second.to_flow_json(),
        "sciflow/v1 drifted"
    );
}
