//! The gate as a test: the whole workspace — scilint's own sources
//! included — must be clean. This is the same analysis `scripts/ci.sh`
//! runs, so a rule violation anywhere fails `cargo test` too.

use std::path::Path;

#[test]
fn workspace_including_scilint_itself_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/scilint sits two levels below the workspace root");
    let report = scilint::analyze_workspace(root).expect("workspace readable");
    assert!(
        report.files > 100,
        "walker found too few files — layout changed?"
    );
    assert!(
        report.is_clean(),
        "scilint findings in the workspace:\n{}",
        report.listing()
    );
    // Every suppression in the tree carries a reason by construction
    // (reasonless allows become S001 findings), so cleanliness here also
    // certifies the suppression policy.
}
