//! Generate a complete synthetic benchmark dataset on disk: NIfTI subjects
//! for the neuroscience use case and FITS visits for the astronomy use
//! case, in the formats the paper's pipelines ingest.
//!
//! ```text
//! cargo run --release --example generate_dataset -- [OUT_DIR] [SUBJECTS] [VISITS]
//! ```
//!
//! Defaults: `./dataset`, 2 subjects, 3 visits, test-scale geometry.
//! The generators are seeded: the same arguments always produce
//! byte-identical files.

use scibench::formats::{fits, nifti};
use scibench::sciops::synth::dmri::{DmriPhantom, DmriSpec};
use scibench::sciops::synth::sky::{SkySpec, SkySurvey};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = std::path::PathBuf::from(args.first().map(String::as_str).unwrap_or("dataset"));
    let subjects: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let visits: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let neuro_dir = out.join("neuro");
    let astro_dir = out.join("astro");
    std::fs::create_dir_all(&neuro_dir).expect("create neuro dir");
    std::fs::create_dir_all(&astro_dir).expect("create astro dir");

    // Neuroscience: one .nii per subject + a gradient table sidecar.
    let spec = DmriSpec::test_scale();
    let mut total = 0u64;
    for s in 0..subjects {
        let phantom = DmriPhantom::generate(s as u64, &spec);
        let path = neuro_dir.join(format!("subject{s:03}.nii"));
        nifti::write_file(&path, &phantom.data, spec.voxel_mm).expect("write NIfTI");
        total += std::fs::metadata(&path).expect("stat").len();
        // bvals/bvecs sidecars, the conventional companion files.
        let bvals: Vec<String> = phantom.gtab.bvals.iter().map(|b| b.to_string()).collect();
        std::fs::write(
            neuro_dir.join(format!("subject{s:03}.bval")),
            bvals.join(" "),
        )
        .expect("write bvals");
        let bvecs: String = (0..3)
            .map(|axis| {
                phantom
                    .gtab
                    .bvecs
                    .iter()
                    .map(|v| format!("{:.6}", v[axis]))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(neuro_dir.join(format!("subject{s:03}.bvec")), bvecs).expect("write bvecs");
    }
    println!(
        "neuro: {subjects} subjects ({} volumes each), {total} bytes of NIfTI",
        spec.n_volumes
    );

    // Astronomy: one .fits per (visit, sensor) with flux/variance/mask HDUs.
    let sky = SkySpec {
        n_visits: visits,
        ..SkySpec::test_scale()
    };
    let survey = SkySurvey::generate(7, &sky);
    let mut total = 0u64;
    for visit in &survey.visits {
        for e in visit {
            let hdus = vec![
                fits::TypedHdu {
                    cards: vec![
                        fits::Card {
                            key: "VISIT".into(),
                            value: e.visit.to_string(),
                        },
                        fits::Card {
                            key: "SENSOR".into(),
                            value: e.sensor.to_string(),
                        },
                        fits::Card {
                            key: "CRVAL1".into(),
                            value: e.bbox.x0.to_string(),
                        },
                        fits::Card {
                            key: "CRVAL2".into(),
                            value: e.bbox.y0.to_string(),
                        },
                    ],
                    data: fits::ImageData::F32(e.flux.cast()),
                },
                fits::TypedHdu {
                    cards: vec![],
                    data: fits::ImageData::F32(e.variance.cast()),
                },
                fits::TypedHdu {
                    cards: vec![],
                    data: fits::ImageData::U8(e.mask.clone()),
                },
            ];
            let path = astro_dir.join(format!("v{:02}_s{:02}.fits", e.visit, e.sensor));
            std::fs::write(&path, fits::encode_typed(&hdus)).expect("write FITS");
            total += std::fs::metadata(&path).expect("stat").len();
        }
    }
    println!(
        "astro: {visits} visits × {} sensors, {total} bytes of FITS",
        sky.sensors_per_visit()
    );
    println!("dataset written to {}", out.display());
}
