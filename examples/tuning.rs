//! The paper's §5.3 tuning experiments: reproduce Figures 13–15 and the
//! chunk-size / caching / assignment sweeps in one run.
//!
//! ```text
//! cargo run --release --example tuning
//! ```

use scibench::core::experiments::{self, Setup};

fn main() {
    let setup = Setup::default();
    for table in [
        experiments::fig13(&setup),
        experiments::fig14(&setup),
        experiments::fig15(&setup),
        experiments::chunk_sweep(&setup),
        experiments::tf_assignment(&setup),
        experiments::caching(&setup),
        experiments::autotune(&setup),
        experiments::ablations(&setup),
    ] {
        println!("{}", table.render());
    }
    println!("lesson (as in the paper's §6): every system needed tuning, and none was best with defaults —");
    println!(
        "and the autotune table shows a self-tuning layer could have found the settings itself."
    );
}
