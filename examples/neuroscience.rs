//! The neuroscience use case end to end, at two levels:
//!
//! 1. **Real execution** at test scale: NIfTI files on a simulated "S3"
//!    directory, ingested and processed by the Spark analog, validated
//!    against the reference.
//! 2. **Paper-scale simulation**: the same pipeline lowered to the cluster
//!    simulator at full HCP geometry (25 subjects, 105 GB, 16 nodes) —
//!    the Figure 10c data point.
//!
//! ```text
//! cargo run --release --example neuroscience
//! ```

use scibench::core::experiments::{neuro_e2e, Setup};
use scibench::core::lower::Engine;
use scibench::core::usecases::neuro::{self, Subject};
use scibench::formats::nifti;
use scibench::sciops::synth::dmri::{DmriPhantom, DmriSpec};

fn main() {
    // ---- Part 1: real execution at test scale ------------------------
    let dir = std::env::temp_dir().join("scibench_neuro_example");
    std::fs::create_dir_all(&dir).expect("create staging dir");

    // Stage two subjects as real NIfTI files (the survey's release form).
    let spec = DmriSpec::test_scale();
    let mut subjects = Vec::new();
    for id in 0..2u32 {
        let phantom = DmriPhantom::generate(1000 + id as u64, &spec);
        let path = dir.join(format!("subject{id}.nii"));
        nifti::write_file(&path, &phantom.data, spec.voxel_mm).expect("write NIfTI");
        println!(
            "staged {} ({} bytes)",
            path.display(),
            std::fs::metadata(&path).expect("stat").len()
        );
        // Ingest: parse the NIfTI back (what every engine's loader does).
        let (header, data) = nifti::read_file(&path).expect("read NIfTI");
        assert_eq!(header.dims(), data.dims().to_vec());
        subjects.push(Subject {
            id,
            data: std::sync::Arc::new(data.cast()),
            gtab: std::sync::Arc::new(phantom.gtab.clone()),
        });
    }

    let fa = neuro::spark(&subjects, 8);
    for id in 0..2u32 {
        let reference = sciops::neuro::reference_pipeline(
            &subjects[id as usize].data,
            &subjects[id as usize].gtab,
            &neuro::nlm_params(),
        );
        let ok = fa[&id]
            .data()
            .iter()
            .zip(reference.fa.data())
            .all(|(a, b)| (a - b).abs() < 1e-9);
        println!(
            "subject {id}: FA map {} voxels, matches reference: {ok}",
            fa[&id].len()
        );
        assert!(ok);
    }

    // ---- Part 2: paper-scale simulation ------------------------------
    println!("\nsimulated end-to-end runtimes at paper scale (25 subjects, 105 GB):");
    let setup = Setup::default();
    for nodes in [16usize, 32, 64] {
        let d = neuro_e2e(&setup, Engine::Dask, 25, nodes);
        let m = neuro_e2e(&setup, Engine::Myria, 25, nodes);
        let s = neuro_e2e(&setup, Engine::Spark, 25, nodes);
        println!("  {nodes:>2} nodes:  Dask {d:>7.0}s   Myria {m:>7.0}s   Spark {s:>7.0}s");
    }
    std::fs::remove_dir_all(&dir).ok();
}
