//! Quickstart: generate a small synthetic dMRI subject, run the full
//! neuroscience pipeline on the reference implementation and on three
//! engines, and check they agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scibench::core::usecases::neuro::{self, Subject};
use scibench::sciops::neuro::reference_pipeline;
use scibench::sciops::synth::dmri::{DmriPhantom, DmriSpec};

fn main() {
    // 1. A synthetic subject (stands in for a gated HCP subject; same
    //    structure at laptop-friendly geometry).
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(42, &spec);
    let subject = Subject::from_phantom(0, &phantom);
    println!(
        "subject: {:?} voxels × {} volumes ({} b0)",
        &spec.dims,
        spec.n_volumes,
        phantom.gtab.b0_indices().len()
    );

    // 2. The single-machine reference (the paper's Python/Dipy role).
    let nlm = neuro::nlm_params();
    let reference = reference_pipeline(&subject.data, &subject.gtab, &nlm);
    println!(
        "reference: mask fills {:.0}% of the volume, max FA = {:.3}",
        100.0 * reference.mask.fill_fraction(),
        reference.fa.max()
    );

    // 3. The same pipeline on three engines (the paper's Figures 6–8).
    let subjects = vec![subject];
    let spark_fa = neuro::spark(&subjects, 8);
    let myria_fa = neuro::myria(&subjects, 2, 2);
    let dask_fa = neuro::dask(&subjects, 4);

    for (name, fa) in [
        ("Spark", &spark_fa),
        ("Myria", &myria_fa),
        ("Dask", &dask_fa),
    ] {
        let worst = fa[&0]
            .data()
            .iter()
            .zip(reference.fa.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("{name:>6}-analog FA matches the reference (max |Δ| = {worst:.2e})");
        assert!(worst < 1e-9, "{name} diverged from the reference");
    }
    println!("all engines agree — quickstart OK");
}
