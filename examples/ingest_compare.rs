//! Figure 11 standalone: data-ingest comparison across the six
//! configurations, with real format conversions demonstrated at test scale
//! first (NIfTI → NumPy for Spark/Myria staging, NIfTI → CSV for SciDB
//! `aio_input`).
//!
//! ```text
//! cargo run --release --example ingest_compare
//! ```

use scibench::core::experiments::{self, ingest_time, IngestSystem, Setup};
use scibench::formats::{nifti, npy, text};
use scibench::sciops::synth::dmri::{DmriPhantom, DmriSpec};

fn main() {
    // Real conversions on one small subject: the byte-size story behind
    // Figure 11's SciDB penalty.
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(3, &spec);
    let as_nifti = nifti::encode(&phantom.data, spec.voxel_mm).expect("encode NIfTI");
    let vol0 = phantom.data.slice_axis(3, 0).expect("volume 0");
    let as_npy = npy::encode_f32(&vol0);
    let as_csv = text::to_csv(&vol0);
    println!("one volume of a test-scale subject:");
    println!("  NIfTI payload share : {:>9} bytes", vol0.nbytes());
    println!(
        "  NumPy (.npy) staged : {:>9} bytes ({:.2}× binary)",
        as_npy.len(),
        as_npy.len() as f64 / vol0.nbytes() as f64
    );
    println!(
        "  CSV for aio_input   : {:>9} bytes ({:.2}× binary)",
        as_csv.len(),
        as_csv.len() as f64 / vol0.nbytes() as f64
    );
    println!("  whole subject NIfTI : {:>9} bytes\n", as_nifti.len());

    // The Figure 11 sweep at paper scale.
    let setup = Setup::default();
    println!("{}", experiments::fig11(&setup).render());

    // The figure's headline relationships.
    let s1 = ingest_time(&setup, IngestSystem::SciDb1, 12);
    let s2 = ingest_time(&setup, IngestSystem::SciDb2, 12);
    println!(
        "aio_input is {:.0}× faster than from_array at 12 subjects",
        s1 / s2
    );
    let myria = ingest_time(&setup, IngestSystem::Myria, 12);
    let spark = ingest_time(&setup, IngestSystem::Spark, 12);
    println!(
        "Myria beats Spark by {:.0}s (no master-side key enumeration)",
        spark - myria
    );
}
