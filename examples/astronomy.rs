//! The astronomy use case end to end:
//!
//! 1. **Real execution** at test scale: a synthetic survey staged as real
//!    FITS files, run through the Spark and Myria analogs and through the
//!    SciDB-style native-AQL co-addition, all validated against the
//!    reference pipeline.
//! 2. **Paper-scale simulation**: Figure 10d/10h points and the Figure 15
//!    memory-management comparison.
//!
//! ```text
//! cargo run --release --example astronomy
//! ```

use scibench::core::experiments::{astro_e2e, myria_astro_mode, Setup};
use scibench::core::lower::Engine;
use scibench::core::usecases::astro as astro_uc;
use scibench::engine_rel::ExecutionMode;
use scibench::formats::fits;
use scibench::marray::NdArray;
use scibench::sciops::astro::pipeline::reference_pipeline;
use scibench::sciops::synth::sky::{SkySpec, SkySurvey};

fn main() {
    // ---- Part 1: real execution at test scale ------------------------
    let spec = SkySpec::test_scale();
    let survey = SkySurvey::generate(7, &spec);
    println!(
        "survey: {} visits × {} sensors of {}×{} px, {} injected sources",
        spec.n_visits,
        spec.sensors_per_visit(),
        spec.sensor_height,
        spec.sensor_width,
        spec.n_sources
    );

    // Stage visit 0 as real FITS files (flux + variance + mask HDUs).
    let dir = std::env::temp_dir().join("scibench_astro_example");
    std::fs::create_dir_all(&dir).expect("create staging dir");
    for e in &survey.visits[0] {
        // The real layout: f32 flux + f32 variance planes, u8 mask plane.
        let hdus = vec![
            fits::TypedHdu {
                cards: vec![
                    fits::Card {
                        key: "VISIT".into(),
                        value: e.visit.to_string(),
                    },
                    fits::Card {
                        key: "SENSOR".into(),
                        value: e.sensor.to_string(),
                    },
                ],
                data: fits::ImageData::F32(e.flux.cast()),
            },
            fits::TypedHdu {
                cards: vec![],
                data: fits::ImageData::F32(e.variance.cast()),
            },
            fits::TypedHdu {
                cards: vec![],
                data: fits::ImageData::U8(e.mask.clone()),
            },
        ];
        let path = dir.join(format!("v0_s{}.fits", e.sensor));
        std::fs::write(&path, fits::encode_typed(&hdus)).expect("write FITS");
    }
    let staged = std::fs::read_dir(&dir).expect("list").count();
    println!("staged {staged} FITS exposures for visit 0");

    // Run the pipeline on the reference, Spark and Myria; compare.
    let grid = survey.patch_grid();
    let (c, co, d) = astro_uc::astro_params();
    let reference = reference_pipeline(&survey.visits, &grid, &c, &co, &d);
    let spark = astro_uc::spark(&survey, 8);
    let myria = astro_uc::myria(&survey, 2, 2);
    println!(
        "detected sources — reference: {}, Spark: {}, Myria: {} (injected {})",
        reference.total_sources(),
        spark.catalogs.values().map(Vec::len).sum::<usize>(),
        myria.catalogs.values().map(Vec::len).sum::<usize>(),
        spec.n_sources
    );
    assert_eq!(
        reference.total_sources(),
        spark.catalogs.values().map(Vec::len).sum::<usize>()
    );

    // The SciDB-style co-addition in pure array operations on one patch.
    let patch = *reference.coadds.keys().next().expect("some patch");
    let patch_box = grid.patch_box(patch);
    let visits = survey.visits.len();
    let rows = patch_box.height as usize;
    let cols = patch_box.width as usize;
    // Build the (visit, rows, cols) cube of merged patch exposures.
    let mut cube = NdArray::<f64>::zeros(&[visits, rows, cols]);
    for (v, exposures) in survey.visits.iter().enumerate() {
        let calibrated: Vec<_> = exposures
            .iter()
            .map(|e| sciops::astro::calibrate_exposure(e, &c))
            .collect();
        let pieces: Vec<_> = calibrated
            .iter()
            .filter_map(|e| e.crop_to(&patch_box))
            .collect();
        let merged = sciops::astro::pipeline::merge_visit_pieces(&patch_box, &pieces);
        let slice = merged
            .flux
            .clone()
            .reshape(&[1, rows, cols])
            .expect("rank-3 slice");
        cube.write_subarray(&[v, 0, 0], &slice).expect("cube slice");
    }
    let db = engine_array::ArrayDb::connect(4);
    let coadd = astro_uc::scidb_coadd_cube(&db, &cube, 24).expect("scidb coadd runs");
    println!(
        "SciDB-style AQL coadd of patch {:?}: {}×{} px, mean flux {:.1} (chunk ops recorded: {:?})",
        patch,
        coadd.dims()[0],
        coadd.dims()[1],
        coadd.mean(),
        db.stats().snapshot()
    );

    // ---- Part 2: paper-scale simulation ------------------------------
    println!("\nsimulated end-to-end runtimes at paper scale (24 visits, 115 GB):");
    let setup = Setup::default();
    for nodes in [16usize, 32, 64] {
        let m = astro_e2e(&setup, Engine::Myria, 24, nodes).expect("myria completes");
        let s = astro_e2e(&setup, Engine::Spark, 24, nodes).expect("spark completes");
        println!("  {nodes:>2} nodes:  Myria {m:>6.0}s   Spark {s:>6.0}s");
    }
    println!("\nMyria memory-management modes at 24 visits, 16 nodes (Figure 15):");
    for (name, mode) in [
        ("pipelined", ExecutionMode::Pipelined),
        ("materialized", ExecutionMode::Materialized),
        ("multi-query", ExecutionMode::MultiQuery { pieces: 4 }),
    ] {
        match myria_astro_mode(&setup, 24, 16, mode) {
            Ok(t) => println!("  {name:>12}: {t:.0}s"),
            Err(e) => println!("  {name:>12}: failed ({e})"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
