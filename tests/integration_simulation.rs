//! Integration checks on the paper-scale simulation: the headline
//! qualitative findings of the evaluation section must hold end to end.

use scibench::core::experiments::{
    astro_e2e, ingest_time, myria_astro_mode, neuro_e2e, scidb_coadd_time, step_time,
    tuned_partitions, udf_coadd_time, IngestSystem, Setup, Step,
};
use scibench::core::lower::Engine;
use scibench::engine_rel::ExecutionMode;
use scibench::simcluster::ClusterSpec;

fn setup() -> Setup {
    Setup::default()
}

#[test]
fn headline_fig10c_relationships() {
    let s = setup();
    // §5.1: Dask slower for a single subject, comparable-to-faster at 25;
    // no significant penalty for using the data-management systems.
    let d1 = neuro_e2e(&s, Engine::Dask, 1, 16);
    let m1 = neuro_e2e(&s, Engine::Myria, 1, 16);
    let sp1 = neuro_e2e(&s, Engine::Spark, 1, 16);
    assert!(
        d1 > 1.3 * m1.min(sp1),
        "Dask single-subject penalty: {d1} vs {m1}/{sp1}"
    );
    let d25 = neuro_e2e(&s, Engine::Dask, 25, 16);
    let m25 = neuro_e2e(&s, Engine::Myria, 25, 16);
    let sp25 = neuro_e2e(&s, Engine::Spark, 25, 16);
    let spread = [d25, m25, sp25];
    let max = spread.iter().cloned().fold(0.0f64, f64::max);
    let min = spread.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.25,
        "the three systems stay comparable: {spread:?}"
    );
}

#[test]
fn headline_scaling_is_near_linear() {
    let s = setup();
    for e in Engine::neuro_e2e() {
        let t16 = neuro_e2e(&s, e, 25, 16);
        let t64 = neuro_e2e(&s, e, 25, 64);
        assert!(t16 / t64 > 2.2, "{}: 16→64 speedup {}", e.name(), t16 / t64);
    }
    // Myria's speedup is the closest to ideal (the paper: "almost
    // perfect linear speedup").
    let speedup = |e| neuro_e2e(&s, e, 25, 16) / neuro_e2e(&s, e, 25, 64);
    assert!(speedup(Engine::Myria) >= speedup(Engine::Dask));
    assert!(speedup(Engine::Myria) >= speedup(Engine::Spark));
}

#[test]
fn headline_fig11_ingest_relationships() {
    let s = setup();
    for subjects in [8usize, 25] {
        let dask = ingest_time(&s, IngestSystem::Dask, subjects);
        let myria = ingest_time(&s, IngestSystem::Myria, subjects);
        let spark = ingest_time(&s, IngestSystem::Spark, subjects);
        let tf = ingest_time(&s, IngestSystem::TensorFlow, subjects);
        let s1 = ingest_time(&s, IngestSystem::SciDb1, subjects);
        let s2 = ingest_time(&s, IngestSystem::SciDb2, subjects);
        assert!(myria < spark, "Myria {myria} < Spark {spark}");
        assert!(
            s1 / s2 > 5.0,
            "aio an order of magnitude faster: {s1} vs {s2}"
        );
        assert!(
            s2 > myria,
            "CSV conversion keeps SciDB-2 {s2} above Myria {myria}"
        );
        assert!(tf > 2.0 * spark, "master-funneled TF {tf} ≫ Spark {spark}");
        assert!(dask > 0.0);
    }
}

#[test]
fn headline_fig12d_iteration_penalty() {
    let s = setup();
    let udf = udf_coadd_time(&s, Engine::Myria, 24).min(udf_coadd_time(&s, Engine::Spark, 24));
    let aql = scidb_coadd_time(&s, 24, 1000, false);
    let incremental = scidb_coadd_time(&s, 24, 1000, true);
    assert!(aql / udf > 8.0, "stock AQL coadd {aql} ≫ UDF coadd {udf}");
    let gain = aql / incremental;
    assert!((4.0..9.0).contains(&gain), "incremental gain {gain} ≈ 6×");
}

#[test]
fn headline_fig15_memory_management() {
    let s = setup();
    // Small data: pipelined < materialized < multi-query.
    let pipe = myria_astro_mode(&s, 8, 16, ExecutionMode::Pipelined).expect("fits");
    let mat = myria_astro_mode(&s, 8, 16, ExecutionMode::Materialized).expect("fits");
    let multi = myria_astro_mode(&s, 8, 16, ExecutionMode::MultiQuery { pieces: 2 }).expect("fits");
    assert!(pipe < mat && mat < multi, "{pipe} < {mat} < {multi}");
    let mat_penalty = mat / pipe - 1.0;
    assert!(
        (0.02..0.20).contains(&mat_penalty),
        "materialization penalty {mat_penalty}"
    );
    // Large data: pipelined fails, the others complete.
    assert!(myria_astro_mode(&s, 24, 16, ExecutionMode::Pipelined).is_err());
    assert!(myria_astro_mode(&s, 24, 16, ExecutionMode::Materialized).is_ok());
    assert!(myria_astro_mode(&s, 24, 16, ExecutionMode::MultiQuery { pieces: 4 }).is_ok());
}

#[test]
fn headline_chunk_size_sweep() {
    let s = setup();
    let t500 = scidb_coadd_time(&s, 24, 500, false);
    let t1000 = scidb_coadd_time(&s, 24, 1000, false);
    let t1500 = scidb_coadd_time(&s, 24, 1500, false);
    let t2000 = scidb_coadd_time(&s, 24, 2000, false);
    assert!(
        t1000 < t500 && t1000 < t1500 && t1000 < t2000,
        "1000² is optimal"
    );
    assert!(
        (2.2..4.0).contains(&(t500 / t1000)),
        "500² ≈ 3× slower: {}",
        t500 / t1000
    );
    assert!(
        (1.05..1.45).contains(&(t1500 / t1000)),
        "1500² ≈ +22%: {}",
        t1500 / t1000
    );
    assert!(
        (1.3..1.8).contains(&(t2000 / t1000)),
        "2000² ≈ +55%: {}",
        t2000 / t1000
    );
}

#[test]
fn headline_fig12_step_relationships() {
    let s = setup();
    // Filter (12a): TF orders of magnitude slower; Spark ≫ Myria/Dask.
    let f: Vec<f64> = [
        Engine::Dask,
        Engine::Myria,
        Engine::Spark,
        Engine::TensorFlow,
    ]
    .iter()
    .map(|&e| step_time(&s, e, Step::Filter, 25))
    .collect();
    assert!(f[3] > 20.0 * f[2], "TF filter {} vs Spark {}", f[3], f[2]);
    assert!(
        f[2] > 3.0 * f[0].max(f[1]),
        "Spark filter {} vs Dask/Myria",
        f[2]
    );
    // Mean (12b): SciDB fastest at small scale.
    let scidb = step_time(&s, Engine::SciDb, Step::Mean, 1);
    for e in [
        Engine::Spark,
        Engine::Myria,
        Engine::Dask,
        Engine::TensorFlow,
    ] {
        assert!(
            scidb < step_time(&s, e, Step::Mean, 1),
            "SciDB mean beats {}",
            e.name()
        );
    }
}

#[test]
fn astro_e2e_spark_close_to_myria() {
    let s = setup();
    let m = astro_e2e(&s, Engine::Myria, 24, 16).expect("completes");
    let sp = astro_e2e(&s, Engine::Spark, 24, 16).expect("completes");
    assert!(m < sp, "Myria {m} leads Spark {sp}");
    assert!(sp / m < 1.35, "but they stay comparable: {}", sp / m);
}

#[test]
fn spark_partition_default_underutilizes() {
    // §5.3.1: with the default block-derived partition count, a single
    // subject leaves the cluster mostly idle.
    let s = setup();
    let cluster = ClusterSpec::r3_2xlarge(16);
    let default_p = (scibench::core::workload::NeuroWorkload { subjects: 1 })
        .input_bytes()
        .div_ceil(engine_rdd::DEFAULT_BLOCK_BYTES) as usize;
    assert!(
        default_p < tuned_partitions(&cluster) / 2,
        "default {default_p} partitions"
    );
    let w = scibench::core::workload::NeuroWorkload { subjects: 1 };
    let g_default =
        scibench::core::lower::neuro::spark(&w, &s.cm, &s.profiles, &cluster, None, true);
    let g_tuned = scibench::core::lower::neuro::spark(
        &w,
        &s.cm,
        &s.profiles,
        &cluster,
        Some(tuned_partitions(&cluster)),
        true,
    );
    let t_default = simcluster::simulate(
        &g_default,
        &cluster,
        s.profiles.policy(Engine::Spark),
        false,
    )
    .unwrap()
    .makespan;
    let t_tuned = simcluster::simulate(&g_tuned, &cluster, s.profiles.policy(Engine::Spark), false)
        .unwrap()
        .makespan;
    assert!(
        t_default > 1.3 * t_tuned,
        "default {t_default} vs tuned {t_tuned}"
    );
}
