//! Cross-crate integration: the astronomy use case from FITS staging to
//! source catalogs, across Spark, Myria and the SciDB-style coadd.

use scibench::core::usecases::astro as uc;
use scibench::formats::fits;
use scibench::sciops::astro::geometry::Exposure;
use scibench::sciops::astro::pipeline::reference_pipeline;
use scibench::sciops::synth::sky::{SkySpec, SkySurvey};

fn survey() -> SkySurvey {
    SkySurvey::generate(99, &SkySpec::test_scale())
}

#[test]
fn fits_staging_roundtrips_exposures() {
    let s = survey();
    for e in &s.visits[0] {
        // The real layout: two float planes + a byte mask plane.
        let hdus = vec![
            fits::TypedHdu {
                cards: vec![],
                data: fits::ImageData::F32(e.flux.cast()),
            },
            fits::TypedHdu {
                cards: vec![],
                data: fits::ImageData::F32(e.variance.cast()),
            },
            fits::TypedHdu {
                cards: vec![],
                data: fits::ImageData::U8(e.mask.clone()),
            },
        ];
        let bytes = fits::encode_typed(&hdus);
        let back = fits::decode_typed(&bytes).expect("decode");
        let flux: marray::NdArray<f64> = back[0].data.to_f32().cast();
        // f32 quantization only.
        for (a, b) in flux.data().iter().zip(e.flux.data()) {
            assert!((a - b).abs() <= b.abs().max(1.0) * 1e-6);
        }
        assert_eq!(back[2].data.to_u8(), e.mask, "mask plane is byte-exact");
        assert!(
            matches!(back[2].data, fits::ImageData::U8(_)),
            "mask stays BITPIX 8"
        );
    }
}

#[test]
fn spark_myria_and_reference_find_identical_catalogs() {
    let s = survey();
    let grid = s.patch_grid();
    let (c, co, d) = uc::astro_params();
    let reference = reference_pipeline(&s.visits, &grid, &c, &co, &d);
    let spark = uc::spark(&s, 6);
    let myria = uc::myria(&s, 4, 1);

    assert_eq!(spark.catalogs.len(), reference.catalogs.len());
    assert_eq!(myria.catalogs.len(), reference.catalogs.len());
    for (patch, want) in &reference.catalogs {
        for (name, got) in [
            ("spark", &spark.catalogs[patch]),
            ("myria", &myria.catalogs[patch]),
        ] {
            assert_eq!(got.len(), want.len(), "{name} patch {patch:?}");
            for (g, w) in got.iter().zip(want) {
                assert!(
                    (g.centroid.0 - w.centroid.0).abs() < 1e-9,
                    "{name} centroid x"
                );
                assert!(
                    (g.centroid.1 - w.centroid.1).abs() < 1e-9,
                    "{name} centroid y"
                );
                assert_eq!(g.npix, w.npix, "{name} cluster size");
            }
        }
    }
}

#[test]
fn coadds_suppress_cosmic_rays() {
    // Raw visit-0 exposures carry single-pixel cosmic rays far above the
    // background; the coadd across visits must not.
    let s = survey();
    let grid = s.patch_grid();
    let (c, co, d) = uc::astro_params();
    let out = reference_pipeline(&s.visits, &grid, &c, &co, &d);
    let raw_max = s.visits[0]
        .iter()
        .map(|e: &Exposure| e.flux.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let coadd_max = out
        .coadds
        .values()
        .map(|c| c.flux.max())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        raw_max > 15_000.0,
        "the generator injected cosmic rays (max raw {raw_max})"
    );
    assert!(
        coadd_max < s.spec.flux_range.1 * 1.5,
        "coadd max {coadd_max} should be source-level, not cosmic-ray-level"
    );
}

#[test]
fn scidb_cube_coadd_consistent_with_reference_on_uniform_variance() {
    // With uniform per-visit variance, the reference's inverse-variance
    // weighted clipped mean equals the plain clipped mean the AQL chain
    // computes.
    let db = engine_array::ArrayDb::connect(2);
    let visits = 8;
    let cube = marray::NdArray::from_fn(&[visits, 5, 5], |ix| {
        if ix[0] == 2 && ix[1] == 1 {
            50_000.0 // a cosmic-ray streak in visit 2, row 1
        } else {
            100.0 + (ix[1] * 5 + ix[2]) as f64
        }
    });
    let out = uc::scidb_coadd_cube(&db, &cube, 3).expect("scidb coadd runs");
    for r in 0..5 {
        for c in 0..5 {
            let samples: Vec<f64> = (0..visits).map(|v| cube[&[v, r, c][..]]).collect();
            let want = sciops::stats::sigma_clipped_mean(&samples, 3.0, 2);
            let got = out[&[r, c][..]];
            assert!((got - want).abs() < 1e-9, "({r},{c}): {got} vs {want}");
        }
    }
}
