//! The zero-copy data plane's acceptance tests: every engine analog's
//! pipeline must produce bit-identical outputs whether chunk-handle clones
//! deep-copy (the eager, copy-everywhere baseline) or share buffers (the
//! shipped data plane), and sharing must eliminate the non-architectural
//! copies.
//!
//! All counter assertions run inside `with_copy_mode` sections, which
//! serialize on a global lock, so parallel test threads cannot pollute
//! each other's deltas.

use scibench::marray::{with_copy_mode, CopyCounter, CopyMode, NdArray};
use scibench_bench::e2e;

#[test]
fn every_engine_pipeline_is_bit_identical_across_copy_modes() {
    let (results, skipped) = e2e::run_e2e(true);
    assert_eq!(results.len(), 8, "5 neuro + 3 astro measurements");
    assert_eq!(skipped.len(), 2, "astro dask + tensorflow gaps documented");
    for r in &results {
        assert!(
            r.outputs_identical,
            "{}/{} diverged between eager and shared modes",
            r.pipeline, r.engine
        );
        assert!(
            r.copies_after <= r.copies_before,
            "{}/{} made MORE copies on the shared plane ({} -> {})",
            r.pipeline,
            r.engine,
            r.copies_before,
            r.copies_after
        );
    }
}

#[test]
fn shared_plane_halves_copies_on_at_least_three_engines() {
    // The acceptance bar: copies drop >= 50% on >= 3 of the 5 engine
    // analogs (measured on the neuroscience pipeline, which all five run).
    let (results, _) = e2e::run_e2e(true);
    let halved: Vec<&str> = results
        .iter()
        .filter(|r| r.pipeline == "neuro" && r.copy_drop >= 0.5)
        .map(|r| r.engine)
        .collect();
    assert!(
        halved.len() >= 3,
        "only {halved:?} dropped >= 50% of copies"
    );
    // SciDB is allowed to keep its architectural rewrites (ingest
    // chunking, materialize, rechunk, stream TSV), but sharing must still
    // eliminate the clone-driven ones.
    let scidb = results
        .iter()
        .find(|r| r.pipeline == "neuro" && r.engine == "scidb")
        .expect("scidb row");
    assert!(
        scidb.copies_after < scidb.copies_before,
        "scidb: {} -> {}",
        scidb.copies_before,
        scidb.copies_after
    );
}

#[test]
fn remaining_copies_carry_only_sanctioned_reason_tags() {
    // On the shared plane every surviving copy must be COW or an
    // explicitly recorded architectural copy — never the eager-clone tag,
    // which only the baseline mode may produce.
    let (results, _) = e2e::run_e2e(true);
    for r in &results {
        for (reason, copies) in &r.reasons_after {
            assert_ne!(
                reason.as_str(),
                "eager-clone",
                "{}/{} made {copies} eager clones in shared mode",
                r.pipeline,
                r.engine
            );
        }
    }
}

#[test]
fn copy_counter_sees_eager_clones_and_not_shared_ones() {
    let a = NdArray::<f64>::from_fn(&[16, 16], |ix| (ix[0] * 16 + ix[1]) as f64);

    with_copy_mode(CopyMode::Shared, || {
        let before = CopyCounter::snapshot();
        let b = a.clone();
        assert!(b.shares_buffer(&a), "shared-mode clone must alias");
        let delta = CopyCounter::snapshot().since(&before);
        assert_eq!(delta.copies, 0, "refcount bump was counted as a copy");
    });

    with_copy_mode(CopyMode::Eager, || {
        let before = CopyCounter::snapshot();
        let b = a.clone();
        assert!(!b.shares_buffer(&a), "eager-mode clone must deep-copy");
        assert_eq!(b, a, "deep copy must be bit-identical");
        let delta = CopyCounter::snapshot().since(&before);
        assert_eq!(delta.copies, 1);
        assert_eq!(delta.bytes, a.nbytes() as u64);
        assert!(delta.by_reason.contains_key("eager-clone"));
    });
}
