//! Cross-crate integration: the neuroscience use case from file format to
//! FA map, across every engine that can express it.

use scibench::core::usecases::neuro::{self, Subject};
use scibench::formats::nifti;
use scibench::marray::NdArray;
use scibench::sciops::neuro::reference_pipeline;
use scibench::sciops::synth::dmri::{DmriPhantom, DmriSpec};
use std::sync::Arc;

/// Stage phantoms through real NIfTI bytes, as the engines' loaders would.
fn staged_subjects(n: usize) -> Vec<Subject> {
    let spec = DmriSpec::test_scale();
    (0..n)
        .map(|i| {
            let phantom = DmriPhantom::generate(7000 + i as u64, &spec);
            let bytes = nifti::encode(&phantom.data, spec.voxel_mm).expect("encode");
            let (_, data) = nifti::decode(&bytes).expect("decode");
            Subject {
                id: i as u32,
                data: Arc::new(data.cast()),
                gtab: Arc::new(phantom.gtab.clone()),
            }
        })
        .collect()
}

#[test]
fn nifti_staging_preserves_pipeline_output() {
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(7000, &spec);
    let via_file = &staged_subjects(1)[0];
    // The NIfTI round trip must not change a single voxel, so the
    // pipelines below are exactly the phantom's.
    let direct: NdArray<f64> = phantom.data.cast();
    assert_eq!(via_file.data.as_ref(), &direct);
}

#[test]
fn all_udf_engines_agree_on_two_subjects() {
    let subjects = staged_subjects(2);
    let nlm = neuro::nlm_params();

    let spark = neuro::spark(&subjects, 8);
    let myria = neuro::myria(&subjects, 4, 2);
    let dask = neuro::dask(&subjects, 8);

    for s in &subjects {
        let reference = reference_pipeline(&s.data, &s.gtab, &nlm).fa;
        for (name, out) in [("spark", &spark), ("myria", &myria), ("dask", &dask)] {
            let fa = &out[&s.id];
            assert_eq!(fa.dims(), reference.dims(), "{name} subject {}", s.id);
            for (a, b) in fa.data().iter().zip(reference.data()) {
                assert!((a - b).abs() < 1e-9, "{name} subject {} diverged", s.id);
            }
        }
    }
}

#[test]
fn scidb_stream_denoise_close_to_reference_through_tsv() {
    let subjects = staged_subjects(1);
    let out = neuro::scidb(&subjects);
    let s = &subjects[0];
    let (_, mask) = sciops::neuro::pipeline::segmentation(&s.data, &s.gtab);
    let reference = sciops::neuro::pipeline::denoise_all(&s.data, &mask, &neuro::nlm_params());
    let scale = reference.max().abs().max(1.0);
    for (a, b) in out.denoised[&0].data().iter().zip(reference.data()) {
        assert!(
            (a - b).abs() < 2e-3 * scale,
            "TSV roundtrip drift too large: {a} vs {b}"
        );
    }
}

#[test]
fn tensorflow_partial_implementation_consistency() {
    // TF can only do Steps 1N (simplified) and 2N (unmasked conv); verify
    // it agrees with the reference where the paper says it should (the
    // mean), and differs where the engine cannot express the computation
    // (the masked denoise).
    let subjects = staged_subjects(1);
    let tf = neuro::tensorflow(&subjects);
    let s = &subjects[0];
    let (mean_ref, mask_ref) = sciops::neuro::pipeline::segmentation(&s.data, &s.gtab);
    assert_eq!(tf.mean_b0[&0], mean_ref, "mean is exact");
    // The simplified mask differs from median_otsu but overlaps heavily.
    let agree = tf.mask[&0]
        .bits()
        .iter()
        .zip(mask_ref.bits())
        .filter(|(a, b)| a == b)
        .count() as f64
        / mask_ref.len() as f64;
    assert!(agree > 0.8, "mask agreement {agree}");
    // The conv-denoised volume is NOT the NLM-denoised one: background
    // voxels change under convolution (no mask support).
    let nlm_ref =
        sciops::neuro::denoise::nlmeans3d(&s.volume(0), Some(&mask_ref), &neuro::nlm_params());
    let mut background_changed = 0;
    for i in 0..mask_ref.len() {
        if !mask_ref.get_flat(i) && (tf.denoised0[&0].data()[i] - nlm_ref.data()[i]).abs() > 1e-9 {
            background_changed += 1;
        }
    }
    assert!(
        background_changed > 0,
        "unmasked convolution must touch the background"
    );
}
